package mica

import (
	"errors"
	"fmt"
	"io/fs"

	"mica/internal/ivstore"
	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/vm"
)

// IVStore is the sharded, columnar, on-disk interval-vector store
// behind registry-scale joint phase analysis: one binary shard per
// benchmark plus a versioned JSON manifest. See internal/ivstore for
// the format.
type IVStore = ivstore.Store

// StoreOptions parameterizes the store-backed joint pipelines. The
// zero value (plus a Dir) is the documented default: float32 shards,
// full rebuild.
type StoreOptions struct {
	// Dir is the store directory.
	Dir string
	// Quantize selects the 8-bit quantized shard encoding instead of
	// float32 — 4x smaller shards for a reconstruction error bounded by
	// half a per-column quantization step (ivstore.Quant8MaxError).
	Quantize bool
	// Incremental reuses shards of an existing store in Dir whose
	// benchmark name and configuration stamp still match, so a rerun
	// re-characterizes only the benchmarks whose configuration hash or
	// membership changed (a missing or dropped shard counts as
	// changed). Without it the whole set is re-characterized.
	Incremental bool
}

// encoding maps the option to the store encoding.
func (o StoreOptions) encoding() ivstore.Encoding {
	if o.Quantize {
		return ivstore.Quant8
	}
	return ivstore.Float32
}

// StoreBuildStats reports what a CharacterizeToStore run did per
// benchmark — the incremental contract made observable (and
// regression-tested: an incremental rerun that changes one benchmark
// re-characterizes exactly that one).
type StoreBuildStats struct {
	// Characterized lists the benchmarks whose shards were (re)built
	// this run, in pipeline order.
	Characterized []string
	// Reused lists the benchmarks whose existing shards were adopted
	// unchanged.
	Reused []string
}

// CharacterizeToStore characterizes every benchmark's intervals into
// an on-disk interval-vector store: the sharded pooled pipeline (one
// profiler per worker, Reset between intervals and benchmarks) feeds
// one shard per benchmark, written as each worker finishes, so peak
// memory is bounded by the in-flight benchmarks — never the
// registry-wide matrix. The committed store's row order is bs order,
// exactly the concatenation order of the in-memory joint path.
//
// With opt.Incremental, shards of an existing store in opt.Dir are
// reused in place when their benchmark name and configuration stamp
// (the hash of the normalized phase configuration) still match and
// their file is still present; only changed benchmarks pay
// re-characterization, and benchmarks dropped from bs are pruned on
// commit. A directory that holds an unreadable store is an error,
// never silently overwritten. cfg.Progress is invoked once per
// benchmark actually characterized (not for reused shards).
func CharacterizeToStore(bs []Benchmark, cfg PhasePipelineConfig, opt StoreOptions) (*IVStore, *StoreBuildStats, error) {
	if len(bs) == 0 {
		return nil, nil, fmt.Errorf("mica: characterizing zero benchmarks to a store")
	}
	if opt.Dir == "" {
		return nil, nil, fmt.Errorf("mica: store characterization needs a directory")
	}
	cfg.Phase = cfg.Phase.WithDefaults()
	enc := opt.encoding()
	hash := phaseConfigHash(cfg.Phase)

	// Inventory the existing store when reuse is requested (the
	// manifest alone — a vanished shard file only invalidates its own
	// benchmark, via the Adopt fallback below). A missing store means a
	// fresh build; a present-but-unusable one is surfaced, mirroring
	// the JSON caches' refusal to clobber.
	reusable := make(map[string]ivstore.Shard)
	prevCfg, prevShards, err := ivstore.Inventory(opt.Dir)
	switch {
	case err == nil:
		if opt.Incremental && prevCfg.Dims == NumChars && prevCfg.Encoding == enc && prevCfg.ConfigHash == hash {
			for _, sh := range prevShards {
				if sh.ConfigHash == hash {
					reusable[sh.Name] = sh
				}
			}
		}
	case errors.Is(err, fs.ErrNotExist):
		// No store yet; build from scratch.
	default:
		return nil, nil, fmt.Errorf("mica: %s exists but is not a usable interval-vector store (delete it or pass another path): %w", opt.Dir, err)
	}

	st, err := ivstore.Create(opt.Dir, ivstore.Config{Dims: NumChars, Encoding: enc, ConfigHash: hash})
	if err != nil {
		return nil, nil, err
	}

	stats := &StoreBuildStats{}
	var toBuild []Benchmark
	for _, b := range bs {
		if sh, ok := reusable[b.Name()]; ok {
			if err := st.Adopt(sh); err == nil {
				stats.Reused = append(stats.Reused, b.Name())
				continue
			}
			// A vanished or renamed shard file counts as a changed
			// benchmark: fall through to re-characterization.
		}
		toBuild = append(toBuild, b)
		stats.Characterized = append(stats.Characterized, b.Name())
	}

	err = phasePipeline(toBuild, cfg, "store characterization", func(m *vm.Machine, prof *micachar.Profiler, i int) error {
		res, err := phases.CharacterizeWith(m, prof, cfg.Phase)
		if err != nil {
			return err
		}
		insts := make([]uint64, len(res.Intervals))
		for ii, iv := range res.Intervals {
			insts[ii] = iv.Insts
		}
		return st.WriteShard(toBuild[i].Name(), insts, res.Vectors)
	})
	if err != nil {
		return nil, nil, err
	}

	order := make([]string, len(bs))
	for i, b := range bs {
		order[i] = b.Name()
	}
	if err := st.Commit(order); err != nil {
		return nil, nil, err
	}
	return st, stats, nil
}

// AnalyzePhasesJointStore is AnalyzePhasesJoint through the
// interval-vector store: every benchmark is characterized into (or
// reused from) the store in opt.Dir, then the registry-wide joint
// vocabulary is clustered by streaming rows shard-by-shard —
// bit-identical to the in-memory path on data that round-trips the
// shard encoding, with peak memory O(workers x shard + k·d) instead
// of O(benchmarks x intervals x 47). The returned result's Vectors
// matrix is nil by design; everything else (assignment, K,
// representatives, occupancy, provenance) is fully populated.
func AnalyzePhasesJointStore(bs []Benchmark, cfg PhasePipelineConfig, opt StoreOptions) (*PhaseJointResult, *StoreBuildStats, error) {
	st, stats, err := CharacterizeToStore(bs, cfg, opt)
	if err != nil {
		return nil, nil, err
	}
	j, err := phases.AnalyzeJointStore(st, cfg.Phase, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	return j, stats, nil
}

// OpenIVStore opens an existing committed interval-vector store —
// the read-only entry point for tools that analyze a store built by
// an earlier run (mica-phases -store without re-characterizing, or a
// direct phases.AnalyzeJointStore call).
func OpenIVStore(dir string) (*IVStore, error) { return ivstore.Open(dir) }
