package mica

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/pool"
	"mica/internal/trace"
)

// Store-backed reduced profiling: the cheap sampled pass's interval
// vectors go through the interval-vector store (one shard per
// benchmark, same incremental reuse and crash-safety as the plain
// store pipeline), and the expensive replay reads them back through
// the store's decoded-shard cache. The shards are stamped with a
// reduced-specific configuration hash, so plain and reduced stores in
// the same directory lineage never cross-adopt each other's shards.

// reducedStoreHash is the configuration stamp of a reduced cheap-pass
// shard: the cheap characterization's phase stamp composed with the
// sampling fraction (the two inputs that shape the stored vectors) and
// a reduced-pipeline salt keeping it disjoint from phaseConfigHash
// even for SampleFrac == 1. cfg must already have its defaults
// applied.
func reducedStoreHash(cfg ReducedConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "mica-reduced-store-v1\n%s\n%s\n",
		phaseConfigHash(cfg.CheapConfig()), strconv.FormatFloat(cfg.SampleFrac, 'g', -1, 64))
	return hex.EncodeToString(h.Sum(nil))
}

// CharacterizeReducedToStore runs the reduced pipeline's cheap sampled
// pass over every benchmark into an on-disk interval-vector store —
// CharacterizeToStore with the sampled key-subset characterization
// instead of the full one. The stored vectors keep the full
// characteristic width (columns outside the subset are exactly zero),
// so the joint clustering machinery reads reduced stores unchanged.
// Reuse, fault isolation and partial commits follow
// CharacterizeToStoreCtx's contract.
func CharacterizeReducedToStore(bs []Benchmark, cfg ReducedPipelineConfig, opt StoreOptions) (*IVStore, *StoreBuildStats, error) {
	return CharacterizeReducedToStoreCtx(context.Background(), bs, cfg, opt)
}

// CharacterizeReducedToStoreCtx is CharacterizeReducedToStore with
// cancellation and per-benchmark fault isolation.
func CharacterizeReducedToStoreCtx(ctx context.Context, bs []Benchmark, cfg ReducedPipelineConfig, opt StoreOptions) (*IVStore, *StoreBuildStats, error) {
	rcfg := cfg.Reduced.WithDefaults()
	pcfg := PhasePipelineConfig{Phase: rcfg.CheapConfig(), Workers: cfg.Workers, Progress: cfg.Progress}
	return characterizeToStoreCtx(ctx, bs, pcfg, opt, reducedStoreHash(rcfg), "reduced store characterization of",
		func(m trace.Source, prof *micachar.Profiler) (*phases.Result, error) {
			return phases.CharacterizeReducedWith(m, prof, rcfg)
		})
}

// AnalyzeReducedStore is AnalyzeReducedBenchmarks through the
// interval-vector store: the cheap pass lands in (or is reused from)
// the store in opt.Dir, then each benchmark's phases are clustered
// from its stored shard and replayed with the full profiler. With
// opt.Incremental, an unchanged benchmark skips its cheap pass
// entirely — only the replay (whose cost the reduction already
// bounded to a few intervals per phase) is paid again.
func AnalyzeReducedStore(bs []Benchmark, cfg ReducedPipelineConfig, opt StoreOptions) ([]BenchmarkReduced, *StoreBuildStats, error) {
	return AnalyzeReducedStoreCtx(context.Background(), bs, cfg, opt)
}

// AnalyzeReducedStoreCtx is AnalyzeReducedStore with cancellation and
// per-benchmark fault isolation. The cheap half has
// CharacterizeToStoreCtx's resumable semantics; like the in-memory
// pipeline, the returned error joins every failed benchmark while
// results[i].Result is non-nil exactly when bs[i] made it through both
// passes.
func AnalyzeReducedStoreCtx(ctx context.Context, bs []Benchmark, cfg ReducedPipelineConfig, opt StoreOptions) ([]BenchmarkReduced, *StoreBuildStats, error) {
	rcfg := cfg.Reduced.WithDefaults()
	st, stats, err := CharacterizeReducedToStoreCtx(ctx, bs, cfg, opt)
	if st != nil {
		defer st.Close()
	}
	if err != nil {
		return nil, stats, err
	}

	shardIdx := make(map[string]int)
	for i, sh := range st.Shards() {
		shardIdx[sh.Name] = i
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(bs) {
		workers = len(bs)
	}
	results := make([]BenchmarkReduced, len(bs))
	for i := range results {
		results[i].Benchmark = bs[i]
	}
	fullProfs := make([]*micachar.Profiler, workers)
	var done int
	var mu sync.Mutex

	replayErr := pool.RunCtx(ctx, len(bs), workers, func(_ context.Context, worker, i int) error {
		si, ok := shardIdx[bs[i].Name()]
		if !ok {
			return fmt.Errorf("no committed shard (cheap pass did not complete)")
		}
		sd, err := st.CachedShard(si)
		if err != nil {
			return err
		}
		replay, err := bs[i].Source()
		if err != nil {
			return err
		}
		if fullProfs[worker] == nil {
			fullProfs[worker] = micachar.NewProfiler(rcfg.FullOptions)
		}
		res, err := phases.ReplayReducedShard(replay, fullProfs[worker], sd, rcfg)
		if err != nil {
			return err
		}
		results[i].Result = res
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(bs), bs[i].Name())
			mu.Unlock()
		}
		return nil
	})
	captureCacheStats(st, stats)
	return results, stats, namePoolErrors(replayErr, "store-backed reduced replay of", func(i int) string { return bs[i].Name() })
}

// AnalyzeReducedJointStore is AnalyzeReducedJoint through the
// interval-vector store: the cheap pass lands in the store, the shared
// vocabulary is clustered by streaming the store's rows (warm-started
// from the previous run's state when opt.WarmStart), and the joint
// replay measures only the shared representatives, gathered back
// through the decoded-shard cache.
func AnalyzeReducedJointStore(bs []Benchmark, cfg ReducedPipelineConfig, opt StoreOptions) (*PhaseJointReduced, *StoreBuildStats, error) {
	return AnalyzeReducedJointStoreCtx(context.Background(), bs, cfg, opt)
}

// AnalyzeReducedJointStoreCtx is AnalyzeReducedJointStore with
// cancellation. As with the other joint paths, a characterization
// failure is fatal to the joint result (partial cheap work is still
// committed for the next incremental run).
func AnalyzeReducedJointStoreCtx(ctx context.Context, bs []Benchmark, cfg ReducedPipelineConfig, opt StoreOptions) (*PhaseJointReduced, *StoreBuildStats, error) {
	rcfg := cfg.Reduced.WithDefaults()
	st, stats, err := CharacterizeReducedToStoreCtx(ctx, bs, cfg, opt)
	if st != nil {
		defer st.Close()
	}
	if err != nil {
		return nil, stats, err
	}
	var warm *phases.JointWarmState
	if opt.WarmStart {
		warm = loadWarmState(st)
	}
	j, warmUsed, err := phases.AnalyzeJointStoreWarmCtx(ctx, st, rcfg.CheapConfig(), cfg.Workers, warm)
	if stats != nil {
		stats.WarmStarted = warmUsed
	}
	if err != nil {
		captureCacheStats(st, stats)
		return nil, stats, err
	}
	saveWarmState(st, j)
	jr, err := phases.ReplayJointStore(st, j, func(bi int) (trace.Source, error) {
		return bs[bi].Source()
	}, rcfg)
	captureCacheStats(st, stats)
	if err != nil {
		return nil, stats, fmt.Errorf("mica: store-backed joint reduced replay: %w", err)
	}
	return jr, stats, nil
}
