package mica

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func cacheBenchmarks(t *testing.T, names ...string) []Benchmark {
	t.Helper()
	bs := make([]Benchmark, len(names))
	for i, n := range names {
		b, err := BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs[i] = b
	}
	return bs
}

var cacheTestConfig = PhaseConfig{IntervalLen: 1_000, MaxIntervals: 6, MaxK: 3, Seed: 2006}

// TestSavePhasesRoundTrip: Save then Load must reproduce every field of
// every result bit for bit, plus the normalized configuration.
func TestSavePhasesRoundTrip(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large", "SPEC2000/gzip/program")
	results, err := AnalyzePhasesBenchmarks(bs, PhasePipelineConfig{Phase: cacheTestConfig, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "phases.json")
	if err := SavePhases(path, cacheTestConfig, results); err != nil {
		t.Fatal(err)
	}
	loaded, cfg, err := LoadPhases(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(phaseConfigToJSON(cfg), phaseConfigToJSON(cacheTestConfig)) {
		t.Errorf("config round-trip: %+v vs %+v", cfg, cacheTestConfig)
	}
	if len(loaded) != len(results) {
		t.Fatalf("loaded %d results, want %d", len(loaded), len(results))
	}
	for i := range results {
		if loaded[i].Benchmark.Name() != results[i].Benchmark.Name() {
			t.Errorf("result %d is %s, want %s", i, loaded[i].Benchmark.Name(), results[i].Benchmark.Name())
		}
		if !reflect.DeepEqual(loaded[i].Result, results[i].Result) {
			t.Errorf("%s: loaded result diverges from saved", results[i].Benchmark.Name())
		}
	}
}

// TestSaveJointPhasesRoundTrip: the joint cache must round-trip the
// provenance rows, per-row instruction counts, matrix, assignment,
// representatives and occupancy exactly.
func TestSaveJointPhasesRoundTrip(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large", "SPEC2000/gzip/program")
	j, err := AnalyzePhasesJoint(bs, PhasePipelineConfig{Phase: cacheTestConfig, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "joint.json")
	if err := SaveJointPhases(path, cacheTestConfig, j); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadJointPhases(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, j) {
		t.Error("joint result did not survive the round-trip")
	}
}

// TestLoadPhasesGolden pins the on-disk format: the committed golden
// file (which includes unknown fields at several levels — the
// forward-compatibility contract) must load and carry the expected
// shape.
func TestLoadPhasesGolden(t *testing.T) {
	results, cfg, err := LoadPhases(filepath.Join("testdata", "phases_cache_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IntervalLen != 1_000 || cfg.MaxIntervals != 6 || cfg.MaxK != 3 || cfg.Seed != 2006 {
		t.Errorf("golden config = %+v", cfg)
	}
	if len(results) != 2 {
		t.Fatalf("golden has %d results, want 2", len(results))
	}
	for i, want := range []string{"MiBench/sha/large", "SPEC2000/gzip/program"} {
		r := results[i]
		if r.Benchmark.Name() != want {
			t.Errorf("result %d is %s, want %s", i, r.Benchmark.Name(), want)
		}
		if len(r.Result.Intervals) != 6 || r.Result.TotalInsts() != 6_000 {
			t.Errorf("%s: %d intervals, %d insts", want, len(r.Result.Intervals), r.Result.TotalInsts())
		}
		if r.Result.K < 1 || r.Result.K > 3 || len(r.Result.Representatives) == 0 {
			t.Errorf("%s: K=%d reps=%d", want, r.Result.K, len(r.Result.Representatives))
		}
		if r.Result.Vectors.Rows != 6 || r.Result.Vectors.Cols != NumChars {
			t.Errorf("%s: vector matrix %dx%d", want, r.Result.Vectors.Rows, r.Result.Vectors.Cols)
		}
	}
}

// TestLoadJointPhasesGolden pins the joint on-disk format.
func TestLoadJointPhasesGolden(t *testing.T) {
	j, cfg, err := LoadJointPhases(filepath.Join("testdata", "phases_joint_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 2006 {
		t.Errorf("golden joint config = %+v", cfg)
	}
	if len(j.Benchmarks) != 2 || len(j.Rows) != 12 || j.K < 1 {
		t.Errorf("golden joint shape: %d benchmarks, %d rows, K=%d", len(j.Benchmarks), len(j.Rows), j.K)
	}
	if j.Occupancy.Rows != 2 || j.Occupancy.Cols != j.K {
		t.Errorf("golden joint occupancy %dx%d", j.Occupancy.Rows, j.Occupancy.Cols)
	}
}

// TestLoadPhasesRejectsWrongVersion: a version stamp other than the
// current one must fail loudly, not silently misparse.
func TestLoadPhasesRejectsWrongVersion(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "phases_cache_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["version"] = PhaseCacheVersion + 1
	bad, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadPhases(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version accepted (err = %v)", err)
	}
}

// TestLoadPhasesRejectsCorruptShapes: truncated vectors, out-of-range
// assignments and unknown benchmark names must all fail.
func TestLoadPhasesRejectsCorruptShapes(t *testing.T) {
	corrupt := func(t *testing.T, mutate func(doc map[string]any)) error {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("testdata", "phases_cache_golden.json"))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		bad, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "corrupt.json")
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = LoadPhases(path)
		return err
	}
	result0 := func(doc map[string]any) map[string]any {
		return doc["results"].([]any)[0].(map[string]any)
	}
	if err := corrupt(t, func(doc map[string]any) {
		r := result0(doc)
		r["vectors"] = r["vectors"].([]any)[:5]
	}); err == nil {
		t.Error("truncated vectors accepted")
	}
	if err := corrupt(t, func(doc map[string]any) {
		result0(doc)["assign"] = []any{99, 0, 0, 0, 0, 0}
	}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if err := corrupt(t, func(doc map[string]any) {
		result0(doc)["name"] = "no/such/benchmark"
	}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestAnalyzePhasesCachedSkipsProfiling is the cache-hit regression
// test: the first call profiles every benchmark (observed via the
// pipeline progress counter), the second call must return identical
// results with ZERO profiling work.
func TestAnalyzePhasesCachedSkipsProfiling(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr")
	path := filepath.Join(t.TempDir(), "cache.json")
	profiled := 0
	pcfg := PhasePipelineConfig{
		Phase:    cacheTestConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { profiled++ },
	}

	first, hit, err := AnalyzePhasesCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first call reported a cache hit")
	}
	if profiled != len(bs) {
		t.Fatalf("first call profiled %d benchmarks, want %d", profiled, len(bs))
	}

	profiled = 0
	second, hit, err := AnalyzePhasesCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second call missed the cache")
	}
	if profiled != 0 {
		t.Fatalf("cache hit still profiled %d benchmarks", profiled)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Errorf("%s: cached result diverges", first[i].Benchmark.Name())
		}
	}
}

// TestAnalyzePhasesCachedServesSubset: a cache holding more benchmarks
// than requested serves the subset (in request order) without
// profiling — a registry-wide cache also answers single-benchmark
// drill-downs instead of being overwritten by them.
func TestAnalyzePhasesCachedServesSubset(t *testing.T) {
	all := cacheBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program")
	path := filepath.Join(t.TempDir(), "cache.json")
	profiled := 0
	pcfg := PhasePipelineConfig{
		Phase:    cacheTestConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { profiled++ },
	}
	full, _, err := AnalyzePhasesCached(path, all, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	profiled = 0
	sub, hit, err := AnalyzePhasesCached(path, cacheBenchmarks(t, "SPEC2000/gzip/program", "MiBench/sha/large"), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || profiled != 0 {
		t.Fatalf("subset request missed the cache (hit=%v, profiled=%d)", hit, profiled)
	}
	if len(sub) != 2 || sub[0].Benchmark.Name() != "SPEC2000/gzip/program" ||
		sub[1].Benchmark.Name() != "MiBench/sha/large" {
		t.Fatalf("subset results in wrong order: %v", sub)
	}
	if !reflect.DeepEqual(sub[0].Result, full[2].Result) || !reflect.DeepEqual(sub[1].Result, full[0].Result) {
		t.Error("subset results diverge from the cached full run")
	}

	// The full cache must still be intact afterwards.
	if again, hit, err := AnalyzePhasesCached(path, all, pcfg); err != nil || !hit || len(again) != 3 {
		t.Fatalf("full cache was disturbed by the subset read (hit=%v, err=%v)", hit, err)
	}
}

// TestAnalyzePhasesCachedMismatchKeepsBroaderCache: a drill-down into
// a subset of the cached benchmarks under a DIFFERENT configuration
// computes fresh results but must not replace the broader cache on
// disk.
func TestAnalyzePhasesCachedMismatchKeepsBroaderCache(t *testing.T) {
	all := cacheBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program")
	path := filepath.Join(t.TempDir(), "cache.json")
	pcfg := PhasePipelineConfig{Phase: cacheTestConfig, Workers: 1}
	if _, _, err := AnalyzePhasesCached(path, all, pcfg); err != nil {
		t.Fatal(err)
	}

	drill := pcfg
	drill.Phase.IntervalLen = 500 // different config: cannot be served from the cache
	res, hit, err := AnalyzePhasesCached(path, cacheBenchmarks(t, "MiBench/sha/large"), drill)
	if err != nil {
		t.Fatal(err)
	}
	if hit || len(res) != 1 {
		t.Fatalf("drill-down: hit=%v len=%d", hit, len(res))
	}

	// The broad cache must still answer the original request.
	again, hit, err := AnalyzePhasesCached(path, all, pcfg)
	if err != nil || !hit || len(again) != 3 {
		t.Fatalf("broad cache was clobbered by the drill-down (hit=%v, err=%v, len=%d)", hit, err, len(again))
	}

	// A same-or-broader mismatched request still refreshes the cache.
	if _, hit, err := AnalyzePhasesCached(path, all, drill); err != nil || hit {
		t.Fatalf("full-set recompute failed (hit=%v, err=%v)", hit, err)
	}
	if _, cfg, err := LoadPhases(path); err != nil || cfg.IntervalLen != 500 {
		t.Errorf("full-set recompute did not refresh the cache (cfg=%+v, err=%v)", cfg, err)
	}
}

// TestAnalyzePhasesCachedRefusesCorruptFile: an existing file that is
// not a usable cache (here: a wrong version stamp) must surface as an
// error rather than being silently recomputed over.
func TestAnalyzePhasesCachedRefusesCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte(`{"version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	bs := cacheBenchmarks(t, "MiBench/sha/large")
	_, _, err := AnalyzePhasesCached(path, bs, PhasePipelineConfig{Phase: cacheTestConfig, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "not a usable phase cache") {
		t.Fatalf("corrupt cache was not refused (err=%v)", err)
	}
	if data, rerr := os.ReadFile(path); rerr != nil || !strings.Contains(string(data), "999") {
		t.Error("corrupt cache file was overwritten")
	}
	// Same contract for the joint pipeline.
	if _, _, err := AnalyzePhasesJointCached(path, bs, PhasePipelineConfig{Phase: cacheTestConfig, Workers: 1}); err == nil {
		t.Error("joint pipeline recomputed over a corrupt cache")
	}
}

// TestAnalyzePhasesCachedEmptySubsetOptions: a non-nil empty
// Options.Subset means "all characteristics" and must hit a cache
// saved with a nil subset (json omitempty drops the empty slice).
func TestAnalyzePhasesCachedEmptySubsetOptions(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large")
	path := filepath.Join(t.TempDir(), "cache.json")
	pcfg := PhasePipelineConfig{Phase: cacheTestConfig, Workers: 1}
	if _, _, err := AnalyzePhasesCached(path, bs, pcfg); err != nil {
		t.Fatal(err)
	}
	withEmpty := pcfg
	withEmpty.Phase.Options.Subset = []bool{}
	if _, hit, err := AnalyzePhasesCached(path, bs, withEmpty); err != nil || !hit {
		t.Errorf("empty (all-characteristics) subset missed the cache (hit=%v, err=%v)", hit, err)
	}
}

// TestAnalyzePhasesCachedInvalidation: a different configuration or
// benchmark set must miss the cache and recompute.
func TestAnalyzePhasesCachedInvalidation(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large")
	path := filepath.Join(t.TempDir(), "cache.json")
	pcfg := PhasePipelineConfig{Phase: cacheTestConfig, Workers: 1}
	if _, _, err := AnalyzePhasesCached(path, bs, pcfg); err != nil {
		t.Fatal(err)
	}

	// Different seed: miss.
	changed := pcfg
	changed.Phase.Seed++
	if _, hit, err := AnalyzePhasesCached(path, bs, changed); err != nil || hit {
		t.Errorf("changed seed hit the cache (err=%v)", err)
	}
	// Different benchmark set: miss (the file now holds the changed-seed
	// run, so reuse the original config with a different set).
	other := cacheBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr")
	if _, hit, err := AnalyzePhasesCached(path, other, changed); err != nil || hit {
		t.Errorf("changed benchmark set hit the cache (err=%v)", err)
	}
}

// TestAnalyzePhasesJointCachedSkipsProfiling mirrors the cache-hit
// regression for the joint pipeline.
func TestAnalyzePhasesJointCachedSkipsProfiling(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large", "SPEC2000/gzip/program")
	path := filepath.Join(t.TempDir(), "joint.json")
	profiled := 0
	pcfg := PhasePipelineConfig{
		Phase:    cacheTestConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { profiled++ },
	}
	first, hit, err := AnalyzePhasesJointCached(path, bs, pcfg)
	if err != nil || hit {
		t.Fatalf("first joint call: hit=%v err=%v", hit, err)
	}
	if profiled != len(bs) {
		t.Fatalf("first joint call profiled %d, want %d", profiled, len(bs))
	}
	profiled = 0
	second, hit, err := AnalyzePhasesJointCached(path, bs, pcfg)
	if err != nil || !hit {
		t.Fatalf("second joint call: hit=%v err=%v", hit, err)
	}
	if profiled != 0 {
		t.Fatalf("joint cache hit still profiled %d benchmarks", profiled)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached joint result diverges from computed")
	}
}

var cacheReducedConfig = ReducedConfig{Phase: cacheTestConfig}

// TestSaveReducedRoundTrip: Save then Load must reproduce the cheap
// vocabulary, every measured interval, the extrapolated vectors and
// the cost accounting bit for bit, plus both halves of the normalized
// configuration.
func TestSaveReducedRoundTrip(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large", "SPEC2000/gzip/program")
	results, err := AnalyzeReducedBenchmarks(bs, ReducedPipelineConfig{Reduced: cacheReducedConfig, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "reduced.json")
	if err := SaveReduced(path, cacheReducedConfig, results); err != nil {
		t.Fatal(err)
	}
	loaded, cfg, err := LoadReduced(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reducedCheapConfigJSON(cfg), reducedCheapConfigJSON(cacheReducedConfig)) {
		t.Errorf("cheap config round-trip: %+v", cfg)
	}
	if !reflect.DeepEqual(reducedConfigToJSON(cfg), reducedConfigToJSON(cacheReducedConfig)) {
		t.Errorf("reduced config round-trip: %+v", cfg)
	}
	if len(loaded) != len(results) {
		t.Fatalf("loaded %d results, want %d", len(loaded), len(results))
	}
	for i := range results {
		if loaded[i].Benchmark.Name() != results[i].Benchmark.Name() {
			t.Errorf("result %d is %s, want %s", i, loaded[i].Benchmark.Name(), results[i].Benchmark.Name())
		}
		if !reflect.DeepEqual(loaded[i].Result, results[i].Result) {
			t.Errorf("%s: loaded reduced result diverges from saved", results[i].Benchmark.Name())
		}
	}
}

// TestAnalyzeReducedCachedHitLevels walks the three cache outcomes:
// a miss runs both passes, a rerun under the same configuration is a
// full hit with zero VM work, and a rerun with different replay-side
// parameters reuses the vocabulary (cheap pass skipped, replay rerun).
func TestAnalyzeReducedCachedHitLevels(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr")
	path := filepath.Join(t.TempDir(), "reduced.json")
	characterized := 0
	pcfg := ReducedPipelineConfig{
		Reduced:  cacheReducedConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { characterized++ },
	}

	first, hit, err := AnalyzeReducedCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit != ReducedMiss {
		t.Fatalf("first call reported %v, want miss", hit)
	}
	if characterized != len(bs) {
		t.Fatalf("first call characterized %d benchmarks, want %d", characterized, len(bs))
	}

	characterized = 0
	second, hit, err := AnalyzeReducedCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit != ReducedHitFull {
		t.Fatalf("second call reported %v, want full hit", hit)
	}
	if characterized != 0 {
		t.Fatalf("full hit still characterized %d benchmarks", characterized)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Errorf("%s: cached reduced result diverges", first[i].Benchmark.Name())
		}
	}

	// Different replay-side parameters: the cheap vocabulary must be
	// reused (cheap pass skipped), only the replay reruns. Proof that
	// the vocabulary really is loaded rather than recomputed: perturb
	// it on disk (swap two intervals' phase assignments) and require
	// the perturbation to surface in the returned phases.
	i0, i1 := perturbCachedAssign(t, path)
	vcfg := pcfg
	vcfg.Reduced.SkipHPC = true
	third, hit, err := AnalyzeReducedCached(path, bs, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit != ReducedHitVocab {
		t.Fatalf("replay-side change reported %v, want vocabulary hit", hit)
	}
	gotAssign := third[0].Result.Phases.Assign
	wantAssign := first[0].Result.Phases.Assign
	if gotAssign[i0] != wantAssign[i1] || gotAssign[i1] != wantAssign[i0] {
		t.Fatal("vocabulary hit did not serve the on-disk vocabulary; the cheap pass must have rerun")
	}
	for i := range first {
		if third[i].Result.HasHPC {
			t.Errorf("%s: SkipHPC replay still carries HPC", first[i].Benchmark.Name())
		}
	}

	// The file now holds the SkipHPC run (with the perturbed
	// vocabulary); the original configuration must again be a
	// vocabulary hit (same cheap side), not a miss.
	_, hit, err = AnalyzeReducedCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit != ReducedHitVocab {
		t.Fatalf("switching back reported %v, want a vocabulary hit", hit)
	}
}

// perturbCachedAssign swaps the phase assignments of two intervals in
// the first cached result of a phase-cache file, returning their
// indices. The file stays valid; a pipeline that truly loads the
// vocabulary will reproduce the swap, one that recomputes will not.
func perturbCachedAssign(t *testing.T, path string) (int, int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pf map[string]any
	if err := json.Unmarshal(data, &pf); err != nil {
		t.Fatal(err)
	}
	results := pf["results"].([]any)
	assign := results[0].(map[string]any)["assign"].([]any)
	i0 := -1
	i1 := -1
	for i := 1; i < len(assign); i++ {
		if assign[i] != assign[0] {
			i0, i1 = 0, i
			break
		}
	}
	if i0 < 0 {
		t.Fatal("cached vocabulary has a single phase; cannot perturb")
	}
	assign[i0], assign[i1] = assign[i1], assign[i0]
	out, err := json.Marshal(pf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return i0, i1
}

// TestAnalyzeReducedCachedCheapMismatchRecomputes: a cheap-side change
// (different sample fraction) invalidates the vocabulary entirely.
func TestAnalyzeReducedCachedCheapMismatchRecomputes(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large")
	path := filepath.Join(t.TempDir(), "reduced.json")
	characterized := 0
	pcfg := ReducedPipelineConfig{
		Reduced:  cacheReducedConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { characterized++ },
	}
	if _, _, err := AnalyzeReducedCached(path, bs, pcfg); err != nil {
		t.Fatal(err)
	}
	characterized = 0
	scfg := pcfg
	scfg.Reduced.SampleFrac = 0.5
	_, hit, err := AnalyzeReducedCached(path, bs, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit != ReducedMiss {
		t.Fatalf("sample-fraction change reported %v, want miss", hit)
	}
	if characterized != len(bs) {
		t.Fatalf("sample-fraction change characterized %d benchmarks, want %d", characterized, len(bs))
	}
}

// TestAnalyzeReducedCachedFromPlainVocabulary: a cache written by the
// PLAIN phase pipeline serves as the cheap vocabulary when the reduced
// request matches it (same subset options, SampleFrac 1) — the
// cache-hit-vocabulary-skips-the-cheap-pass contract.
func TestAnalyzeReducedCachedFromPlainVocabulary(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large")
	path := filepath.Join(t.TempDir(), "phases.json")

	plainCfg := cacheTestConfig
	plainCfg.Options.Subset = KeySubset()
	characterized := 0
	if _, _, err := AnalyzePhasesCached(path, bs, PhasePipelineConfig{
		Phase:    plainCfg,
		Workers:  1,
		Progress: func(done, total int, name string) { characterized++ },
	}); err != nil {
		t.Fatal(err)
	}
	if characterized != 1 {
		t.Fatalf("plain pipeline characterized %d benchmarks, want 1", characterized)
	}

	// Perturb the plain cache's assignment: the reduced run must serve
	// the perturbed vocabulary, proving the cheap pass was skipped.
	i0, i1 := perturbCachedAssign(t, path)
	plain, _, err := LoadPhases(path)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := ReducedPipelineConfig{
		Reduced: ReducedConfig{Phase: cacheTestConfig, SampleFrac: 1},
		Workers: 1,
	}
	results, hit, err := AnalyzeReducedCached(path, bs, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit != ReducedHitVocab {
		t.Fatalf("plain vocabulary reported %v, want vocabulary hit", hit)
	}
	if len(results) != 1 || len(results[0].Result.Measured) == 0 {
		t.Fatal("replay from plain vocabulary produced no measurements")
	}
	got := results[0].Result.Phases.Assign
	if got[i0] != plain[0].Result.Assign[i0] || got[i1] != plain[0].Result.Assign[i1] {
		t.Fatal("reduced run did not serve the on-disk plain vocabulary")
	}
	// The cheap pass, had it rerun, would have undone the swap.
	if got[i0] == got[i1] {
		t.Fatal("perturbation probe degenerate: swapped intervals share a phase")
	}
}

// TestAnalyzeReducedJointCachedSkipsCheapPass: the joint vocabulary
// cache must let a rerun skip characterization and clustering, running
// only the replay, with identical extrapolations.
func TestAnalyzeReducedJointCachedSkipsCheapPass(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr")
	path := filepath.Join(t.TempDir(), "joint.json")
	characterized := 0
	pcfg := ReducedPipelineConfig{
		Reduced:  cacheReducedConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { characterized++ },
	}

	first, hit, err := AnalyzeReducedJointCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first joint call reported a vocabulary hit")
	}
	if characterized != len(bs) {
		t.Fatalf("first joint call characterized %d benchmarks, want %d", characterized, len(bs))
	}

	characterized = 0
	second, hit, err := AnalyzeReducedJointCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second joint call missed the vocabulary cache")
	}
	if characterized != 0 {
		t.Fatalf("joint vocabulary hit still characterized %d benchmarks", characterized)
	}
	for bi := range bs {
		if first.Chars[bi] != second.Chars[bi] {
			t.Errorf("%s: cached-vocabulary extrapolation diverges", bs[bi].Name())
		}
	}

	// A plain joint cache under a different (unsampled) configuration
	// must NOT serve a sampled request.
	characterized = 0
	j, err := AnalyzePhasesJoint(bs, PhasePipelineConfig{Phase: cacheReducedConfig.CheapConfig(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	plainPath := filepath.Join(t.TempDir(), "plain_joint.json")
	if err := SaveJointPhases(plainPath, cacheReducedConfig.CheapConfig(), j); err != nil {
		t.Fatal(err)
	}
	_, hit, err = AnalyzeReducedJointCached(plainPath, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("an unsampled joint vocabulary served a sampled cheap pass")
	}
}

// TestReducedCachedRefusesWrongKind: pointing the per-benchmark
// reduced pipeline at a joint cache (or the joint pipeline at a
// per-benchmark cache) must error instead of silently destroying the
// other kind's expensive results.
func TestReducedCachedRefusesWrongKind(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large")
	pcfg := ReducedPipelineConfig{Reduced: cacheReducedConfig, Workers: 1}

	jointPath := filepath.Join(t.TempDir(), "joint.json")
	if _, _, err := AnalyzeReducedJointCached(jointPath, bs, pcfg); err != nil {
		t.Fatal(err)
	}
	jointBefore, err := os.ReadFile(jointPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AnalyzeReducedCached(jointPath, bs, pcfg); err == nil ||
		!strings.Contains(err.Error(), "joint phase cache") {
		t.Fatalf("per-benchmark pipeline on a joint cache: err = %v, want kind refusal", err)
	}
	if after, _ := os.ReadFile(jointPath); !reflect.DeepEqual(jointBefore, after) {
		t.Fatal("per-benchmark pipeline modified the joint cache")
	}

	benchPath := filepath.Join(t.TempDir(), "reduced.json")
	if _, _, err := AnalyzeReducedCached(benchPath, bs, pcfg); err != nil {
		t.Fatal(err)
	}
	benchBefore, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AnalyzeReducedJointCached(benchPath, bs, pcfg); err == nil ||
		!strings.Contains(err.Error(), "per-benchmark phase cache") {
		t.Fatalf("joint pipeline on a per-benchmark cache: err = %v, want kind refusal", err)
	}
	if after, _ := os.ReadFile(benchPath); !reflect.DeepEqual(benchBefore, after) {
		t.Fatal("joint pipeline modified the per-benchmark cache")
	}
}

// TestReducedVocabHitAccounting: a replay driven off a cached
// vocabulary must reconstruct the cheap pass's observation count
// instead of reporting zero.
func TestReducedVocabHitAccounting(t *testing.T) {
	bs := cacheBenchmarks(t, "MiBench/sha/large")
	path := filepath.Join(t.TempDir(), "reduced.json")
	pcfg := ReducedPipelineConfig{Reduced: cacheReducedConfig, Workers: 1}
	first, _, err := AnalyzeReducedCached(path, bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	vcfg := pcfg
	vcfg.Reduced.RepsPerPhase = 2
	second, hit, err := AnalyzeReducedCached(path, bs, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit != ReducedHitVocab {
		t.Fatalf("reps change reported %v, want vocabulary hit", hit)
	}
	if got, want := second[0].Result.SampledInsts, first[0].Result.SampledInsts; got != want {
		t.Errorf("vocabulary-hit replay reports %d sampled insts, want %d", got, want)
	}
}

// TestVersionMismatchErrorsNameTheFile is the table-driven contract
// for version-stamp rejection across every loader of persisted phase
// state: the JSON caches (per-benchmark, joint, reduced) and the
// interval-vector store manifest. Each error must name the offending
// file and state both versions in the shared "version N, want M"
// wording, so a stale-file report is actionable no matter which layer
// produced it.
func TestVersionMismatchErrorsNameTheFile(t *testing.T) {
	dir := t.TempDir()
	write := func(t *testing.T, name, doc string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		load func(t *testing.T) (string, error)
		want string
	}{
		{"LoadPhases", func(t *testing.T) (string, error) {
			p := write(t, "phases.json", `{"version": 99, "results": [{"name": "x"}]}`)
			_, _, err := LoadPhases(p)
			return p, err
		}, "phase cache version 99, want 1"},
		{"LoadJointPhases", func(t *testing.T) (string, error) {
			p := write(t, "joint.json", `{"version": 99, "joint": {}}`)
			_, _, err := LoadJointPhases(p)
			return p, err
		}, "phase cache version 99, want 1"},
		{"LoadReduced", func(t *testing.T) (string, error) {
			p := write(t, "reduced.json", `{"version": 99, "reduced": [{"name": "x"}]}`)
			_, _, err := LoadReduced(p)
			return p, err
		}, "phase cache version 99, want 1"},
		{"ivstore.Open", func(t *testing.T) (string, error) {
			sub := filepath.Join(dir, "store")
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(sub, "manifest.json")
			doc := `{"version": 99, "dims": 47, "encoding": "float32", "shards": []}`
			if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenIVStore(sub)
			return p, err
		}, "manifest version 99, want 1"},
		{"trace.Open", func(t *testing.T) (string, error) {
			// A real recorded trace with only its version stamp rewritten:
			// everything past the header is a valid v1 body, so the
			// version check alone must reject it.
			b, err := BenchmarkByName("MiBench/sha/large")
			if err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(dir, "stale.trc")
			if _, err := RecordTrace(b, p, 1_000); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			raw[8] = 99
			if err := os.WriteFile(p, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = TraceBenchmark("", p).Source()
			return p, err
		}, "trace format version 99, want 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, err := tc.load(t)
			if err == nil {
				t.Fatal("version-99 file accepted")
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error %q does not name the offending file %s", err, path)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q lacks the unified wording %q", err, tc.want)
			}
		})
	}
}
