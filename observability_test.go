package mica

import (
	"path/filepath"
	"testing"

	"mica/internal/obs"
)

// knownLayers is the closed set of <layer> components allowed in
// mica_<layer>_<name> metric names. A new layer is a deliberate act:
// add it here when the instrumentation lands.
var knownLayers = map[string]bool{
	"pool": true, "ivstore": true, "trace": true,
	"phases": true, "cluster": true, "stage": true, "serve": true,
}

// TestMetricNameLint walks every metric the process registered (the
// package-level vars across pool, ivstore, trace, phases and cluster
// register on import) and holds each name to the repo's contract:
// mica_<layer>_<name>, snake_case, with a known layer. Registration
// itself panics on malformed names; this test additionally pins the
// layer vocabulary so a typo like mica_ivsotre_* cannot slip in.
func TestMetricNameLint(t *testing.T) {
	names := obs.Default().Names()
	if len(names) == 0 {
		t.Fatal("default registry is empty; layer instrumentation did not register")
	}
	for _, name := range names {
		if !obs.ValidName(name) {
			t.Errorf("metric %q violates the mica_<layer>_<name> snake_case contract", name)
			continue
		}
		if layer := obs.LayerOf(name); !knownLayers[layer] {
			t.Errorf("metric %q has unknown layer %q", name, layer)
		}
	}
}

// TestReducedStorePipelineSpans: a fresh store-backed reduced run
// emits every pipeline stage — characterize, normalize, sweep-k,
// replay — exactly once per benchmark, and the recorded stage time is
// non-zero. Double-counted spans would make the -stats dumps (and any
// dashboard on mica_stage_duration_seconds) overstate where time
// goes.
func TestReducedStorePipelineSpans(t *testing.T) {
	bs := storeBenchmarks(t, reducedStoreBenchSet...)
	stages := []string{"phases.characterize", "phases.normalize", "cluster.sweep-k", "phases.replay"}
	base := make(map[string]float64, len(stages))
	baseSec := make(map[string]float64, len(stages))
	for _, s := range stages {
		base[s] = obs.Default().StageRuns(s)
		baseSec[s] = obs.Default().StageSeconds(s)
	}

	cfg := ReducedPipelineConfig{Reduced: reducedAcceptanceConfig(), Workers: 1}
	if _, _, err := AnalyzeReducedStore(bs, cfg, StoreOptions{Dir: filepath.Join(t.TempDir(), "store")}); err != nil {
		t.Fatal(err)
	}

	for _, s := range stages {
		if got := obs.Default().StageRuns(s) - base[s]; got != float64(len(bs)) {
			t.Errorf("stage %q ran %v times, want exactly once per benchmark (%d)", s, got, len(bs))
		}
		if sec := obs.Default().StageSeconds(s) - baseSec[s]; sec <= 0 {
			t.Errorf("stage %q recorded no time", s)
		}
	}
}
