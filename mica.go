// Package mica is a from-scratch Go reproduction of "Comparing Benchmarks
// Using Key Microarchitecture-Independent Characteristics" (Hoste &
// Eeckhout, IISWC 2006).
//
// The package exposes the complete pipeline of the paper:
//
//   - a 122-benchmark workload registry spanning six suites (Table I),
//     executed on a built-in Alpha-style ISA interpreter;
//   - the 47 microarchitecture-independent characteristics of Table II,
//     measured in one pass over the dynamic instruction stream;
//   - a hardware-performance-counter characterization from
//     cycle-approximate EV56 (in-order) and EV67 (out-of-order) machine
//     models;
//   - the distance/ROC analysis of the HPC-vs-inherent-behaviour pitfall
//     (Figure 1, Table III, Figure 4);
//   - correlation elimination and genetic-algorithm selection of key
//     characteristics (Figure 5, Table IV); and
//   - k-means/BIC clustering with kiviat rendering (Figure 6).
//
// Quick start:
//
//	res, err := mica.ProfileAll(mica.DefaultConfig())
//	...
//	an := mica.Analyze(res, mica.DefaultAnalysisConfig())
//	fmt.Printf("distance correlation rho = %.2f\n", an.Rho)
package mica

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"mica/internal/kernels"
	micachar "mica/internal/mica"
	"mica/internal/pool"
	"mica/internal/suites"
	"mica/internal/trace"
	"mica/internal/uarch"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the public names.
type (
	// Vector is the 47-dimensional microarchitecture-independent
	// characteristic vector (Table II).
	Vector = micachar.Vector
	// HPCVector is the 13-dimensional hardware-performance-counter
	// metric vector (Section III-B plus instruction mix).
	HPCVector = uarch.HPCVector
	// Benchmark is one Table I registry entry.
	Benchmark = suites.Benchmark
)

// NumChars is the number of microarchitecture-independent characteristics.
const NumChars = micachar.NumChars

// NumHPCMetrics is the number of HPC metrics.
const NumHPCMetrics = uarch.NumHPCMetrics

// NumHPCCounterMetrics is the number of true counter metrics used for the
// HPC distance space (the instruction-mix tail is excluded, as in the
// paper's Section III-B characterization).
const NumHPCCounterMetrics = uarch.NumHPCCounterMetrics

// CharName returns the name of characteristic i (Table II order).
func CharName(i int) string { return micachar.CharName(i) }

// CharCategory returns the Table II category of characteristic i.
func CharCategory(i int) string { return micachar.CharCategory(i) }

// CharNames returns all 47 characteristic names.
func CharNames() []string { return micachar.CharNames() }

// HPCMetricName returns the name of HPC metric i.
func HPCMetricName(i int) string { return uarch.HPCMetricName(i) }

// Benchmarks returns the 122 benchmarks of Table I.
func Benchmarks() []Benchmark { return suites.All() }

// BenchmarksBySuite returns one suite's benchmarks.
func BenchmarksBySuite(suite string) []Benchmark { return suites.BySuite(suite) }

// BenchmarkByName resolves a canonical "suite/program/input" name.
func BenchmarkByName(name string) (Benchmark, error) { return suites.ByName(name) }

// TraceBenchmark builds a benchmark backed by the recorded trace file
// at path instead of an embedded kernel; it flows through Profile, the
// phase pipelines and the store-backed pipelines exactly like a
// registry entry. name may be a canonical "suite/program/input"
// identifier; anything else is namespaced under the "trace" suite.
func TraceBenchmark(name, path string) Benchmark { return suites.TraceBenchmark(name, path) }

// RecordTrace runs benchmark b for up to budget instructions (<= 0
// means until it halts) while recording its dynamic instruction stream
// to the trace file at path, and returns the number of instructions
// recorded. The file is written durably (tmp, fsync, rename); a
// failed recording leaves nothing at path. The recorded trace replays
// bit-identically through every pipeline via TraceBenchmark.
func RecordTrace(b Benchmark, path string, budget uint64) (uint64, error) {
	src, err := b.Source()
	if err != nil {
		return 0, err
	}
	return trace.Record(src, path, budget)
}

// ValidateTrace decodes an in-memory trace image end to end — header,
// block CRCs, every event record — and returns its event count. It is
// the full-strength admission check services run on uploaded traces
// before persisting them: a trace that validates replays without
// error.
func ValidateTrace(data []byte) (uint64, error) { return trace.Validate(data) }

// SaveTrace durably persists an already encoded trace image to path
// (tmp, fsync, rename), after checking that it carries a current trace
// header. Combined with ValidateTrace it is the upload persistence
// path; recorded files from RecordTrace are already durable.
func SaveTrace(path string, data []byte) error { return trace.SaveBytes(path, data) }

// SuiteNames lists the six suite names in Table I order.
func SuiteNames() []string {
	out := make([]string, len(suites.SuiteNames))
	copy(out, suites.SuiteNames)
	return out
}

// KernelNames lists the available workload kernels.
func KernelNames() []string { return kernels.Names() }

// Config controls benchmark profiling.
type Config struct {
	// InstBudget is the dynamic instruction count per benchmark
	// (default 300k). The paper instruments complete executions of
	// billions of instructions; the reproduction uses fixed-length
	// traces of the same programs.
	InstBudget uint64
	// PPMOrder is the maximum PPM predictor order (default 8).
	PPMOrder int
	// NoMemDeps makes the idealized ILP model ignore store-to-load
	// dependencies through memory. The field is inverted so that the
	// zero Config value matches the documented default (dependencies
	// honored): Profile(b, Config{InstBudget: n}) measures exactly what
	// Profile(b, DefaultConfig()) does at that budget.
	NoMemDeps bool
	// Subset restricts measurement to selected characteristics (nil
	// means all 47). Entire analyzers are skipped when none of their
	// characteristics are selected — the measurement saving of the
	// paper's key-characteristic methodology.
	Subset []bool
	// SkipHPC disables the machine models (useful when only the
	// microarchitecture-independent vector is needed).
	SkipHPC bool
	// Workers bounds profiling parallelism in ProfileAll (default:
	// GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after each benchmark completes
	// during ProfileAll.
	Progress func(done, total int, name string)
}

// DefaultConfig returns the configuration used for the paper
// reproduction experiments.
func DefaultConfig() Config {
	return Config{
		InstBudget: 300_000,
		PPMOrder:   micachar.DefaultPPMOrder,
	}
}

func (c Config) withDefaults() Config {
	if c.InstBudget == 0 {
		c.InstBudget = 300_000
	}
	if c.PPMOrder == 0 {
		c.PPMOrder = micachar.DefaultPPMOrder
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// ProfileResult is one benchmark's measurement in both workload spaces.
type ProfileResult struct {
	Benchmark Benchmark
	// Chars is the microarchitecture-independent vector.
	Chars Vector
	// HPC is the machine-model counter vector (zero when SkipHPC).
	HPC HPCVector
	// Insts is the number of dynamic instructions profiled.
	Insts uint64
}

// Profile measures one benchmark under cfg.
func Profile(b Benchmark, cfg Config) (ProfileResult, error) {
	cfg = cfg.withDefaults()
	m, err := b.Source()
	if err != nil {
		return ProfileResult{}, err
	}
	prof := micachar.NewProfiler(micachar.Options{
		NoMemDeps: cfg.NoMemDeps,
		PPMOrder:  cfg.PPMOrder,
		Subset:    cfg.Subset,
	})
	observers := trace.Multi{prof}
	var hpc *uarch.HPCProfiler
	if !cfg.SkipHPC {
		hpc = uarch.NewHPCProfiler()
		observers = append(observers, hpc)
	}
	n, err := m.Run(cfg.InstBudget, observers)
	if err != nil && err != trace.ErrBudget {
		return ProfileResult{}, fmt.Errorf("mica: running %s: %w", b.Name(), err)
	}
	res := ProfileResult{Benchmark: b, Chars: prof.Vector(), Insts: n}
	if hpc != nil {
		res.HPC = hpc.Vector()
	}
	return res, nil
}

// ProfileAll measures every benchmark in the registry, in parallel.
// Results are returned in Table I order regardless of scheduling.
func ProfileAll(cfg Config) ([]ProfileResult, error) {
	return ProfileBenchmarks(Benchmarks(), cfg)
}

// ProfileBenchmarks measures the given benchmarks in parallel, returning
// results in input order. Parallelism is a fixed pool of cfg.Workers
// goroutines pulling from a work queue (internal/pool). On any failure
// it returns nil results and an error naming every failed benchmark;
// ProfileBenchmarksCtx is the fault-tolerant form that also returns
// the partial results.
func ProfileBenchmarks(bs []Benchmark, cfg Config) ([]ProfileResult, error) {
	results, err := ProfileBenchmarksCtx(context.Background(), bs, cfg)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ProfileBenchmarksCtx is ProfileBenchmarks with cancellation and
// per-benchmark fault isolation: one failing — or panicking —
// benchmark never stops the others. Every failure is wrapped with the
// offending benchmark's name and all of them are joined into the
// returned error; results[i] is valid exactly when no error names
// bs[i] (failed entries are zero). Cancelling ctx stops dispatching
// new benchmarks, lets in-flight ones drain, and folds ctx.Err() into
// the returned error; benchmarks never dispatched are left zero
// without an error of their own.
func ProfileBenchmarksCtx(ctx context.Context, bs []Benchmark, cfg Config) ([]ProfileResult, error) {
	cfg = cfg.withDefaults()
	results := make([]ProfileResult, len(bs))
	var done int
	var mu sync.Mutex

	err := pool.RunCtx(ctx, len(bs), cfg.Workers, func(_ context.Context, _, i int) error {
		var err error
		results[i], err = Profile(bs[i], cfg)
		if err != nil {
			return err
		}
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(bs), bs[i].Name())
			mu.Unlock()
		}
		return nil
	})
	return results, namePoolErrors(err, "profiling", func(i int) string { return bs[i].Name() })
}

// namePoolErrors rewraps a pool.RunCtx error so that every per-item
// failure — error returns and recovered panics alike — names the
// benchmark it belongs to, which the pool itself cannot do (it only
// knows item indices). Non-item parts (the context error on
// cancellation) pass through unchanged, and the *pool.ItemError stays
// in each wrapped chain so errors.As keeps working.
func namePoolErrors(err error, what string, name func(i int) string) error {
	if err == nil {
		return nil
	}
	var parts []error
	var walk func(e error)
	walk = func(e error) {
		if joined, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
			return
		}
		var ie *pool.ItemError
		if errors.As(e, &ie) {
			parts = append(parts, fmt.Errorf("mica: %s %s: %w", what, name(ie.Item), e))
			return
		}
		parts = append(parts, e)
	}
	walk(err)
	return errors.Join(parts...)
}

// failedItems collects the item indices a pool error attributes
// failures to — the set a partial-result pipeline uses to tell failed
// items (the pool reported them) from skipped ones (never dispatched
// after cancellation). It works on raw pool.RunCtx errors and on
// namePoolErrors-rewrapped ones alike.
func failedItems(err error) map[int]bool {
	if err == nil {
		return nil
	}
	failed := make(map[int]bool)
	var walk func(e error)
	walk = func(e error) {
		if joined, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
			return
		}
		var ie *pool.ItemError
		if errors.As(e, &ie) {
			failed[ie.Item] = true
		}
	}
	walk(err)
	return failed
}
