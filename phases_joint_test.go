package mica

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

// TestAnalyzePhasesJointSingleBenchmarkBitIdentical is the top-level
// differential contract: the joint pipeline run over exactly one
// registry benchmark must reproduce AnalyzePhases bit for bit —
// vectors, assignment, K and representatives.
func TestAnalyzePhasesJointSingleBenchmarkBitIdentical(t *testing.T) {
	for _, name := range []string{"SPEC2000/twolf/ref", "MiBench/sha/large"} {
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := PhaseConfig{IntervalLen: 2_000, MaxIntervals: 15, MaxK: 4, Seed: 9}
		want, err := AnalyzePhases(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		joint, err := AnalyzePhasesJoint([]Benchmark{b}, PhasePipelineConfig{Phase: cfg, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(joint.Vectors.Data, want.Vectors.Data) {
			t.Errorf("%s: joint vectors diverge from AnalyzePhases", name)
		}
		if joint.K != want.K || !reflect.DeepEqual(joint.Assign, want.Assign) {
			t.Errorf("%s: joint assignment diverges (K %d vs %d)", name, joint.K, want.K)
		}
		if len(joint.Representatives) != len(want.Representatives) {
			t.Fatalf("%s: %d representatives vs %d", name,
				len(joint.Representatives), len(want.Representatives))
		}
		for i, jr := range joint.Representatives {
			wr := want.Representatives[i]
			if jr.Phase != wr.Phase || jr.Interval != wr.Interval || jr.Weight != wr.Weight {
				t.Errorf("%s: representative %d = %+v, want %+v", name, i, jr, wr)
			}
		}
	}
}

// TestAnalyzePhasesJointRegistryScale is the registry-scale smoke for
// the joint pipeline: >= 20 benchmarks at 1000 intervals each,
// clustered into one shared vocabulary (large enough that the sweep
// takes the minibatch path), with every provenance row surviving a
// save/load round-trip.
func TestAnalyzePhasesJointRegistryScale(t *testing.T) {
	if testing.Short() {
		t.Skip("registry-scale joint sweep skipped in -short mode")
	}
	bs := Benchmarks()[:20]
	pcfg := PhasePipelineConfig{
		Phase:   PhaseConfig{IntervalLen: 200, MaxIntervals: 1000, MaxK: 6, Seed: 2006},
		Workers: 4,
	}
	joint, err := AnalyzePhasesJoint(bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.Benchmarks) != 20 {
		t.Fatalf("joint space has %d benchmarks, want 20", len(joint.Benchmarks))
	}
	for i, b := range bs {
		if joint.Benchmarks[i] != b.Name() {
			t.Fatalf("benchmark %d is %s, want input order (%s)", i, joint.Benchmarks[i], b.Name())
		}
	}
	if len(joint.Rows) < 20*900 {
		t.Fatalf("only %d joint rows for 20 benchmarks x 1000 intervals", len(joint.Rows))
	}
	if joint.K < 2 {
		t.Errorf("joint K = %d across 20 benchmarks", joint.K)
	}

	// Provenance invariants at scale: rows are grouped by benchmark in
	// input order, interval indices are dense per benchmark, and every
	// benchmark is represented.
	nextInterval := make([]int, len(bs))
	lastBench := 0
	for r, ref := range joint.Rows {
		if ref.Bench < lastBench {
			t.Fatalf("row %d: benchmark order regressed (%d after %d)", r, ref.Bench, lastBench)
		}
		lastBench = ref.Bench
		if ref.Interval != nextInterval[ref.Bench] {
			t.Fatalf("row %d: interval %d, want dense sequence %d", r, ref.Interval, nextInterval[ref.Bench])
		}
		nextInterval[ref.Bench]++
	}
	for b, n := range nextInterval {
		if n == 0 {
			t.Errorf("benchmark %d contributed no rows", b)
		}
	}

	// Occupancy rows sum to 1 for every benchmark.
	for b := range bs {
		sum := 0.0
		for c := 0; c < joint.K; c++ {
			sum += joint.PhaseShare(b, c)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: occupancy sums to %g", joint.Benchmarks[b], sum)
		}
	}

	// Round-trip: every provenance row (and everything else) survives
	// the JSON cache.
	path := filepath.Join(t.TempDir(), "joint-registry.json")
	if err := SaveJointPhases(path, pcfg.Phase, joint); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadJointPhases(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Rows, joint.Rows) {
		t.Error("provenance rows did not survive the round-trip")
	}
	if !reflect.DeepEqual(loaded.RowInsts, joint.RowInsts) {
		t.Error("row instruction counts did not survive the round-trip")
	}
	if !reflect.DeepEqual(loaded, joint) {
		t.Error("joint result did not survive the round-trip")
	}
}

// TestAnalyzePhasesJointReportsErrors: a broken benchmark anywhere in
// the batch surfaces as an error naming it.
func TestAnalyzePhasesJointReportsErrors(t *testing.T) {
	good, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	broken := good
	broken.Kernel = "no-such-kernel"
	_, err = AnalyzePhasesJoint([]Benchmark{good, broken}, PhasePipelineConfig{
		Phase:   PhaseConfig{IntervalLen: 500, MaxIntervals: 3, MaxK: 2, Seed: 1},
		Workers: 1,
	})
	if err == nil {
		t.Fatal("broken benchmark accepted")
	}
}
