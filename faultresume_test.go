package mica

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"reflect"
	"strings"
	"testing"

	"mica/internal/faults"
)

// fiBenchmarks is the small deterministic set the fault suites drive
// the store pipeline over.
func fiBenchmarks(t *testing.T) []Benchmark {
	t.Helper()
	var bs []Benchmark
	for _, n := range []string{"MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program"} {
		b, err := BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	return bs
}

// fiConfig is tiny and single-worker so the recorded injection
// addresses are reproducible across replays.
func fiConfig() PhasePipelineConfig {
	return PhasePipelineConfig{
		Phase:   PhaseConfig{IntervalLen: 500, MaxIntervals: 4, MaxK: 2, Seed: 1},
		Workers: 1,
	}
}

// characterizeOnce runs one CharacterizeToStoreCtx build, converting a
// panic that escapes the pipeline into an error (the in-process shape
// of a crash) and always releasing the store handle — the lock release
// a killed process gets from the OS.
func characterizeOnce(ctx context.Context, bs []Benchmark, dir string) (stats *StoreBuildStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("simulated crash: %v", r)
		}
	}()
	st, stats, err := CharacterizeToStoreCtx(ctx, bs, fiConfig(), StoreOptions{Dir: dir, Incremental: true})
	if st != nil {
		st.Close()
	}
	return stats, err
}

// recoverOrClean asserts dir is Verify-clean, Repair-recoverable, or
// holds no committed manifest at all, and returns the benchmarks the
// recovered manifest still covers — the shards the next incremental
// rerun must adopt instead of rebuilding.
func recoverOrClean(t *testing.T, dir string) []string {
	t.Helper()
	rep, err := VerifyIVStore(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // crash before the first commit: nothing durable yet
	}
	if err != nil {
		t.Fatalf("crashed store unreadable: %v", err)
	}
	if !rep.Clean() {
		if _, err := RepairIVStore(dir); err != nil {
			t.Fatalf("repairing crashed store: %v", err)
		}
		if rep, err = VerifyIVStore(dir); err != nil || !rep.Clean() {
			t.Fatalf("store still dirty after repair (err=%v):\n%s", err, rep.String())
		}
	}
	st, err := OpenIVStore(dir)
	if err != nil {
		t.Fatalf("opening recovered store: %v", err)
	}
	defer st.Close()
	return st.Benchmarks()
}

// TestStorePipelineKillAtEveryInjectionPoint is the pipeline-level
// acceptance test: record the injection addresses one full
// CharacterizeToStore run crosses (worker items, every shard and
// manifest durability step), then replay the build once per address
// with a fault armed there. After every simulated crash the store must
// be Verify-clean or Repair-recoverable, and an incremental rerun must
// finish the job while adopting exactly the shards the crashed run
// committed.
func TestStorePipelineKillAtEveryInjectionPoint(t *testing.T) {
	bs := fiBenchmarks(t)

	stop := faults.Record()
	_, recErr := characterizeOnce(context.Background(), bs, t.TempDir())
	addrs := stop()
	if recErr != nil {
		t.Fatalf("recording run failed: %v", recErr)
	}
	if len(addrs) == 0 {
		t.Fatal("recording run crossed no injection points")
	}

	for _, addr := range addrs {
		// Faults at worker-side points (the pool item itself, shard
		// writes inside fn) are exercised as both clean failures and
		// panics — the latter drives the pool's real recovery machinery.
		// Manifest-side points run on the caller's goroutine inside
		// Commit, where a panic would leak the store's lock handle into
		// the test process, so they get the Fail shape only (their crash
		// coverage lives in the ivstore-level kill test, whose build
		// wrapper owns the handle).
		kinds := []faults.Kind{faults.Fail}
		if addr.Point == faults.PoolItem || strings.HasSuffix(addr.Key, ".ivs") {
			kinds = append(kinds, faults.Crash)
		}
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s_%s", addr, kind), func(t *testing.T) {
				dir := t.TempDir()
				disarm := faults.Arm(addr, kind)
				_, buildErr := characterizeOnce(context.Background(), bs, dir)
				if fired := disarm(); fired != 1 {
					t.Fatalf("fault at %s fired %d times, want 1 (address drift?)", addr, fired)
				}
				if buildErr == nil {
					t.Fatal("injected fault did not surface as an error")
				}

				adopted := recoverOrClean(t, dir)

				stats, err := characterizeOnce(context.Background(), bs, dir)
				if err != nil {
					t.Fatalf("incremental rerun after crash at %s: %v", addr, err)
				}
				if got := len(stats.Reused) + len(stats.Characterized); got != len(bs) {
					t.Fatalf("rerun covered %d benchmarks (reused %v, characterized %v), want %d",
						got, stats.Reused, stats.Characterized, len(bs))
				}
				// Resume contract: exactly the crashed run's committed
				// shards are adopted; only the rest pay characterization.
				if !reflect.DeepEqual(stats.Reused, adopted) {
					t.Errorf("rerun reused %v, want the recovered store's shards %v", stats.Reused, adopted)
				}
				rep, err := VerifyIVStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Clean() || len(rep.Shards) != len(bs) {
					t.Fatalf("final store not clean/complete:\n%s", rep.String())
				}
			})
		}
	}
}

// TestStorePipelineCancelCommitsPartialWork pins the cancellation
// acceptance: cancelling mid-run returns promptly with every finished
// shard committed, and the incremental rerun adopts them.
func TestStorePipelineCancelCommitsPartialWork(t *testing.T) {
	bs := fiBenchmarks(t)
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := fiConfig()
	// Cancel as soon as the first benchmark finishes: with one worker,
	// the remaining two are never dispatched.
	cfg.Progress = func(done, total int, name string) {
		if done == 1 {
			cancel()
		}
	}
	st, stats, err := CharacterizeToStoreCtx(ctx, bs, cfg, StoreOptions{Dir: dir, Incremental: true})
	if st != nil {
		st.Close()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled in the chain", err)
	}
	if len(stats.Characterized) != 1 || len(stats.Skipped) != 2 || len(stats.Failed) != 0 {
		t.Fatalf("cancelled run stats = %+v, want 1 characterized / 2 skipped", stats)
	}

	// The committed partial store is durable and adoptable.
	rep, err := VerifyIVStore(dir)
	if err != nil || !rep.Clean() {
		t.Fatalf("partial store not clean (err=%v)", err)
	}
	st2, stats2, err := CharacterizeToStoreCtx(context.Background(), bs, fiConfig(), StoreOptions{Dir: dir, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !reflect.DeepEqual(stats2.Reused, stats.Characterized) {
		t.Errorf("rerun reused %v, want the cancelled run's committed %v", stats2.Reused, stats.Characterized)
	}
	if len(stats2.Characterized) != 2 {
		t.Errorf("rerun characterized %v, want exactly the 2 skipped benchmarks", stats2.Characterized)
	}
	if got := st2.Benchmarks(); len(got) != len(bs) {
		t.Errorf("final store covers %v", got)
	}
}
