package mica

import (
	"fmt"
	"sort"
	"strings"

	"mica/internal/report"
	"mica/internal/stats"
)

// This file renders each of the paper's tables and figures from an
// Analysis. Every Render function regenerates one experiment artifact;
// cmd/mica-compare writes them to files and bench_test.go regenerates
// them under the benchmark harness.

// RenderTableI reproduces Table I: the benchmark registry with suite,
// program, input and dynamic instruction counts. The paper's absolute
// counts are preserved as documentation; the profiled trace lengths of
// this run are shown alongside.
func RenderTableI(results []ProfileResult) string {
	if len(results) == 0 {
		return "Table I: benchmarks, inputs and dynamic instruction counts\n(no benchmarks)\n"
	}
	t := report.NewTable("suite", "program", "input", "paper I-cnt (M)", "profiled insts")
	for _, r := range results {
		b := r.Benchmark
		t.AddRow(b.Suite, b.Program, b.Input, b.PaperICountM, r.Insts)
	}
	return "Table I: benchmarks, inputs and dynamic instruction counts\n" + t.String()
}

// RenderTableII reproduces Table II: the 47 microarchitecture-independent
// characteristics, annotated with the observed range across the profiled
// benchmarks.
func RenderTableII(results []ProfileResult) string {
	if len(results) == 0 {
		return "Table II: microarchitecture-independent characteristics\n(no benchmarks)\n"
	}
	t := report.NewTable("#", "category", "characteristic", "min", "mean", "max")
	n := len(results)
	for c := 0; c < NumChars; c++ {
		col := make([]float64, n)
		for i, r := range results {
			col[i] = r.Chars[c]
		}
		lo, hi := col[0], col[0]
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		t.AddRow(c+1, CharCategory(c), CharName(c), lo, stats.Mean(col), hi)
	}
	return "Table II: microarchitecture-independent characteristics\n" + t.String()
}

// RenderFigure1 reproduces Figure 1: the scatter of HPC-space distance
// versus microarchitecture-independent-space distance over all benchmark
// tuples, reported here as the correlation coefficient plus a coarse
// ASCII density plot.
func (a *Analysis) RenderFigure1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: HPC distance vs microarchitecture-independent distance\n")
	fmt.Fprintf(&b, "benchmark tuples: %d\n", len(a.Space.CharDist))
	fmt.Fprintf(&b, "correlation coefficient: %.3f (paper: 0.46, 'modest')\n\n", a.Rho)
	b.WriteString(asciiScatter(a.Space.CharDist, a.Space.HPCDist, 48, 20))
	return b.String()
}

// asciiScatter renders a density scatter with x and y scaled to their
// maxima.
func asciiScatter(xs, ys []float64, w, h int) string {
	maxX, maxY := stats.Max(xs), stats.Max(ys)
	if maxX == 0 || maxY == 0 {
		return "(degenerate scatter)\n"
	}
	grid := make([][]int, h)
	for i := range grid {
		grid[i] = make([]int, w)
	}
	for i := range xs {
		x := int(xs[i] / maxX * float64(w-1))
		y := int(ys[i] / maxY * float64(h-1))
		grid[h-1-y][x]++
	}
	shades := " .:+*#@"
	var b strings.Builder
	fmt.Fprintf(&b, "y: HPC-space distance (max %.2f)\n", maxY)
	for _, row := range grid {
		b.WriteByte('|')
		for _, c := range row {
			idx := c
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", w))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "x: uarch-independent distance (max %.2f)\n", maxX)
	return b.String()
}

// RenderTableIII reproduces Table III: the quadrant classification of all
// benchmark tuples at the 20%-of-max thresholds.
func (a *Analysis) RenderTableIII() string {
	fn, tp, tn, fp := a.Tuples.Fractions()
	t := report.NewTable("", "small dist in uarch-indep space", "large dist in uarch-indep space")
	t.AddRow("large dist in HPC space",
		fmt.Sprintf("false negative: %.1f%%", fn*100),
		fmt.Sprintf("true positive: %.1f%%", tp*100))
	t.AddRow("small dist in HPC space",
		fmt.Sprintf("true negative: %.1f%%", tn*100),
		fmt.Sprintf("false positive: %.1f%%", fp*100))
	return fmt.Sprintf("Table III: classifying benchmark tuples (threshold %.0f%% of max)\n",
		a.Config.ThresholdFraction*100) + t.String() +
		"\npaper: FN 0.2%, TP 56.9%, TN 1.8%, FP 41.1%\n"
}

// pitfallPair returns the indices of the Figure 2/3 case-study pair:
// SPEC's bzip2 (graphic) versus BioInfoMark's blast.
func (a *Analysis) pitfallPair() (int, int, error) {
	bi, bj := -1, -1
	for i, n := range a.Space.Names {
		switch n {
		case "SPEC2000/bzip2/graphic":
			bi = i
		case "BioInfoMark/blast/protein":
			bj = i
		}
	}
	if bi < 0 || bj < 0 {
		return 0, 0, fmt.Errorf("mica: pitfall pair not present in space")
	}
	return bi, bj, nil
}

// RenderFigure2 reproduces Figure 2: bzip2 versus blast in the HPC
// space, each metric normalized to the maximum observed value.
func (a *Analysis) RenderFigure2() string {
	bi, bj, err := a.pitfallPair()
	if err != nil {
		return err.Error() + "\n"
	}
	var b strings.Builder
	b.WriteString("Figure 2: hardware performance counter characteristics, bzip2 vs blast\n")
	b.WriteString("(each metric normalized to the max across benchmarks)\n")
	t := report.NewTable("metric", "bzip2", "blast", "|diff|")
	for c := 0; c < NumHPCMetrics; c++ {
		col := a.Space.HPC.Column(c)
		maxv := stats.Max(col)
		x, y := 0.0, 0.0
		if maxv > 0 {
			x, y = a.Space.HPC.At(bi, c)/maxv, a.Space.HPC.At(bj, c)/maxv
		}
		t.AddRow(HPCMetricName(c), x, y, abs(x-y))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "normalized HPC-space distance: %.3f of max\n",
		a.Space.HPCDist[a.Space.PairIndex(bi, bj)]/stats.Max(a.Space.HPCDist))
	return b.String()
}

// RenderFigure3 reproduces Figure 3: the same pair compared on all 47
// microarchitecture-independent characteristics, where the working sets,
// global-history branch predictability and global store strides diverge.
func (a *Analysis) RenderFigure3() string {
	bi, bj, err := a.pitfallPair()
	if err != nil {
		return err.Error() + "\n"
	}
	var b strings.Builder
	b.WriteString("Figure 3: microarchitecture-independent characteristics, bzip2 vs blast\n")
	b.WriteString("(each characteristic normalized to the max across benchmarks)\n")
	t := report.NewTable("#", "characteristic", "bzip2", "blast", "|diff|")
	for c := 0; c < NumChars; c++ {
		col := a.Space.Chars.Column(c)
		maxv := stats.Max(col)
		x, y := 0.0, 0.0
		if maxv > 0 {
			x, y = a.Space.Chars.At(bi, c)/maxv, a.Space.Chars.At(bj, c)/maxv
		}
		t.AddRow(c+1, CharName(c), x, y, abs(x-y))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "normalized uarch-independent distance: %.3f of max\n",
		a.Space.CharDist[a.Space.PairIndex(bi, bj)]/stats.Max(a.Space.CharDist))
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderFigure4 reproduces Figure 4: ROC curves (as AUC summaries plus
// sampled points) for all characteristics, the GA subset, and the CE
// subsets.
func (a *Analysis) RenderFigure4() string {
	var b strings.Builder
	b.WriteString("Figure 4: ROC curves for workload characterization methods\n")
	t := report.NewTable("method", "metrics", "AUC")
	t.AddRow("all characteristics", NumChars, a.AUCAll)
	t.AddRow("genetic algorithm", len(a.GA.Selected), a.AUCGA)
	sizes := append([]int(nil), a.Config.CESizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	for _, k := range sizes {
		t.AddRow(fmt.Sprintf("correlation elimination (%d)", k), k, a.AUCCE[k])
	}
	b.WriteString(t.String())
	b.WriteString("paper: all 0.72, GA 0.69, CE 0.67 (17 metrics) / 0.64 (12 and 7)\n\n")

	curve := a.Space.ROCCurve(a.GA.Selected, a.Config.ThresholdFraction)
	b.WriteString("GA ROC curve (sampled):\n")
	ct := report.NewTable("1-specificity", "sensitivity")
	step := len(curve) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(curve); i += step {
		ct.AddRow(curve[i].OneMinusSpec, curve[i].Sensitivity)
	}
	b.WriteString(ct.String())
	return b.String()
}

// RenderFigure5 reproduces Figure 5: the distance-correlation of the CE
// subsets at every retained size, against the GA subset's correlation at
// its chosen size.
func (a *Analysis) RenderFigure5() string {
	var b strings.Builder
	b.WriteString("Figure 5: distance correlation vs number of retained characteristics\n")
	fmt.Fprintf(&b, "GA: %d characteristics, rho = %.3f (paper: 8 characteristics, rho = 0.876)\n\n",
		len(a.GA.Selected), a.GA.Rho)
	t := report.NewTable("retained", "CE rho", "")
	for k := NumChars; k >= 1; k-- {
		marker := ""
		if k == len(a.GA.Selected) {
			marker = fmt.Sprintf("<- GA rho at this size: %.3f", a.GA.Rho)
		}
		t.AddRow(k, a.CECurve[k-1], marker)
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderTableIV reproduces Table IV: the characteristics retained by the
// genetic algorithm.
func (a *Analysis) RenderTableIV() string {
	var b strings.Builder
	b.WriteString("Table IV: microarchitecture-independent characteristics selected by the GA\n")
	t := report.NewTable("#", "characteristic", "category")
	for i, c := range a.GA.Selected {
		t.AddRow(i+1, CharName(c), CharCategory(c))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "rho = %.3f, fitness = %.3f\n", a.GA.Rho, a.GA.Fitness)
	b.WriteString("paper's 8: pct loads; avg input operands; dep dist <=8; local load stride <=64;\n")
	b.WriteString("           global load stride <=512; local store stride <=4096; D-WS 4KB pages; ILP 256\n")
	return b.String()
}

// RenderFigure6 reproduces Figure 6: the clusters found by k-means with
// BIC-selected K in the key-characteristic space, with one kiviat diagram
// per benchmark grouped by cluster.
func (a *Analysis) RenderFigure6(withKiviats bool) string {
	var b strings.Builder
	groups := a.Space.ClusterGroups(a.Clusters)
	// Count the populated groups, not Best.K: ClusterGroups drops
	// cluster ids k-means left unassigned, and the header must agree
	// with the groups actually rendered.
	fmt.Fprintf(&b, "Figure 6: %d clusters over %d benchmarks in the %d-D key space (paper: 15 clusters)\n\n",
		len(groups), a.Space.Len(), len(a.GA.Selected))
	for gi, g := range groups {
		fmt.Fprintf(&b, "cluster %d (%d benchmarks):\n", gi+1, len(g))
		for _, name := range g {
			fmt.Fprintf(&b, "  %s\n", name)
		}
	}
	if withKiviats {
		b.WriteString("\nkiviat diagrams (axes = GA-selected characteristics):\n\n")
		idxOf := make(map[string]int, a.Space.Len())
		for i, n := range a.Space.Names {
			idxOf[n] = i
		}
		for gi, g := range groups {
			fmt.Fprintf(&b, "--- cluster %d ---\n", gi+1)
			for _, name := range g {
				d, err := a.Space.Kiviat(idxOf[name], a.GA.Selected)
				if err != nil {
					continue
				}
				b.WriteString(d.ASCII(5))
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// SuiteSimilarityReport summarizes, per suite, how many benchmarks share
// a cluster with at least one SPEC CPU2000 benchmark — the paper's
// Section VI conclusion (BioInfoMark/BioMetrics/CommBench dissimilar,
// MediaBench/MiBench similar).
func (a *Analysis) SuiteSimilarityReport() string {
	assign := a.Clusters.Best.Assign
	specClusters := map[int]bool{}
	for i, suite := range a.Space.Suites {
		if suite == "SPEC2000" {
			specClusters[assign[i]] = true
		}
	}
	type rowT struct {
		suite          string
		total, overlap int
	}
	order := []string{}
	rows := map[string]*rowT{}
	for i, suite := range a.Space.Suites {
		if suite == "SPEC2000" {
			continue
		}
		r, ok := rows[suite]
		if !ok {
			r = &rowT{suite: suite}
			rows[suite] = r
			order = append(order, suite)
		}
		r.total++
		if specClusters[assign[i]] {
			r.overlap++
		}
	}
	t := report.NewTable("suite", "benchmarks", "co-clustered with SPEC", "fraction")
	for _, s := range order {
		r := rows[s]
		t.AddRow(r.suite, r.total, r.overlap, float64(r.overlap)/float64(r.total))
	}
	out := fmt.Sprintf("Suite similarity to SPEC CPU2000 (shared clusters, BIC-selected K = %d)\n",
		a.Clusters.Best.K) + t.String()

	// The synthetic workloads cluster more finely than the paper's real
	// benchmarks (see EXPERIMENTS.md); a coarse clustering at the
	// paper's granularity makes the suite-level comparison direct.
	coarse := a.Space.Cluster(a.GA.Selected, 15, a.Config.ClusterSeed)
	cAssign := coarse.Best.Assign
	specClusters = map[int]bool{}
	for i, suite := range a.Space.Suites {
		if suite == "SPEC2000" {
			specClusters[cAssign[i]] = true
		}
	}
	ct := report.NewTable("suite", "benchmarks", "co-clustered with SPEC", "fraction")
	for _, s := range order {
		total, overlap := 0, 0
		for i, suite := range a.Space.Suites {
			if suite != s {
				continue
			}
			total++
			if specClusters[cAssign[i]] {
				overlap++
			}
		}
		ct.AddRow(s, total, overlap, float64(overlap)/float64(total))
	}
	out += fmt.Sprintf("\nAt the paper's granularity (K = %d):\n%s", coarse.Best.K, ct.String())
	out += "paper: BioInfoMark/BioMetrics/CommBench dissimilar from SPEC; MediaBench/MiBench mostly similar\n"
	return out
}
