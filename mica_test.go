package mica

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// testConfig returns a fast profiling configuration for tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.InstBudget = 40_000
	return cfg
}

// profileSubset profiles every n-th benchmark (cached across tests).
func profileSubset(t *testing.T, stride int) []ProfileResult {
	t.Helper()
	var picks []Benchmark
	for i, b := range Benchmarks() {
		if i%stride == 0 {
			picks = append(picks, b)
		}
	}
	res, err := ProfileBenchmarks(picks, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistryHas122(t *testing.T) {
	if len(Benchmarks()) != 122 {
		t.Fatalf("registry has %d benchmarks, want 122", len(Benchmarks()))
	}
	if len(SuiteNames()) != 6 {
		t.Fatal("want 6 suites")
	}
}

func TestProfileSingleBenchmark(t *testing.T) {
	b, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Profile(b, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 40_000 {
		t.Errorf("profiled %d instructions, want 40000", res.Insts)
	}
	// sha is integer-only with tiny working set.
	if res.Chars[5] != 0 { // pct_fp
		t.Errorf("sha FP fraction = %g, want 0", res.Chars[5])
	}
	mixSum := res.Chars[0] + res.Chars[1] + res.Chars[2] + res.Chars[3] + res.Chars[4] + res.Chars[5]
	if math.Abs(mixSum-1) > 1e-9 {
		t.Errorf("instruction mix sums to %g", mixSum)
	}
	if res.HPC[0] <= 0 || res.HPC[1] <= 0 {
		t.Error("HPC IPCs not populated")
	}
}

func TestProfileDeterministic(t *testing.T) {
	b, err := BenchmarkByName("CommBench/tcp/tcp")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Profile(b, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Profile(b, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Chars != r2.Chars || r1.HPC != r2.HPC {
		t.Error("profiling is not deterministic")
	}
}

func TestSubsetProfilingSkipsCharacteristics(t *testing.T) {
	b, err := BenchmarkByName("MiBench/CRC32/large")
	if err != nil {
		t.Fatal(err)
	}
	subset := make([]bool, NumChars)
	subset[0] = true // pct_loads only
	cfg := testConfig()
	cfg.Subset = subset
	cfg.SkipHPC = true
	res, err := Profile(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chars[0] == 0 {
		t.Error("selected characteristic not measured")
	}
	for c := 6; c < NumChars; c++ {
		if res.Chars[c] != 0 {
			t.Errorf("unselected characteristic %s measured", CharName(c))
		}
	}
}

func TestEndToEndAnalysis(t *testing.T) {
	res := profileSubset(t, 4) // ~31 benchmarks
	cfg := DefaultAnalysisConfig()
	cfg.ClusterMaxK = 20
	a := Analyze(res, cfg)

	if a.Rho <= 0 || a.Rho >= 0.999 {
		t.Errorf("distance correlation rho = %.3f; expect modest positive correlation", a.Rho)
	}
	fn, tp, tn, fp := a.Tuples.Fractions()
	if math.Abs(fn+tp+tn+fp-1) > 1e-9 {
		t.Error("quadrant fractions do not sum to 1")
	}
	// The paper's headline: false negatives are rare.
	if fn > 0.1 {
		t.Errorf("false negative fraction = %.2f, want small", fn)
	}
	if len(a.GA.Selected) == 0 || len(a.GA.Selected) >= NumChars {
		t.Errorf("GA selected %d characteristics", len(a.GA.Selected))
	}
	if a.GA.Rho < 0.7 {
		t.Errorf("GA subset rho = %.3f, want substantial", a.GA.Rho)
	}
	if a.AUCAll <= 0.5 {
		t.Errorf("AUC(all) = %.3f, want > 0.5", a.AUCAll)
	}
	// GA must beat CE at comparable cardinality (the paper's claim).
	ceRhoAtGA := a.CECurve[len(a.GA.Selected)-1]
	if a.GA.Rho+1e-9 < ceRhoAtGA {
		t.Errorf("GA rho %.3f below CE rho %.3f at equal size", a.GA.Rho, ceRhoAtGA)
	}
	if a.Clusters.Best.K < 2 {
		t.Errorf("clustering degenerated to K=%d", a.Clusters.Best.K)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	res := profileSubset(t, 6)
	cfg := DefaultAnalysisConfig()
	cfg.ClusterMaxK = 10
	a := Analyze(res, cfg)

	for name, s := range map[string]string{
		"TableI":   RenderTableI(res),
		"TableII":  RenderTableII(res),
		"Figure1":  a.RenderFigure1(),
		"TableIII": a.RenderTableIII(),
		"Figure4":  a.RenderFigure4(),
		"Figure5":  a.RenderFigure5(),
		"TableIV":  a.RenderTableIV(),
		"Figure6":  a.RenderFigure6(false),
		"Suites":   a.SuiteSimilarityReport(),
	} {
		if len(s) < 40 {
			t.Errorf("%s renderer produced almost nothing: %q", name, s)
		}
	}
}

func TestPitfallRenderersNeedPair(t *testing.T) {
	// With the pitfall pair present, Figures 2 and 3 render tables.
	bz, err := BenchmarkByName("SPEC2000/bzip2/graphic")
	if err != nil {
		t.Fatal(err)
	}
	bl, err := BenchmarkByName("BioInfoMark/blast/protein")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProfileBenchmarks([]Benchmark{bz, bl}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAnalysisConfig()
	cfg.ClusterMaxK = 2
	a := Analyze(res, cfg)
	if !strings.Contains(a.RenderFigure2(), "ipc_ev56") {
		t.Error("Figure 2 missing HPC metrics")
	}
	if !strings.Contains(a.RenderFigure3(), "dws_4kb_pages") {
		t.Error("Figure 3 missing characteristics")
	}
}

func TestSaveLoadResultsRoundTrip(t *testing.T) {
	res := profileSubset(t, 20)
	path := filepath.Join(t.TempDir(), "results.json")
	if err := SaveResults(path, 40_000, res); err != nil {
		t.Fatal(err)
	}
	loaded, budget, err := LoadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if budget != 40_000 {
		t.Errorf("budget = %d", budget)
	}
	if len(loaded) != len(res) {
		t.Fatalf("loaded %d results, want %d", len(loaded), len(res))
	}
	for i := range res {
		if loaded[i].Chars != res[i].Chars || loaded[i].HPC != res[i].HPC {
			t.Fatalf("result %d changed in round trip", i)
		}
		if loaded[i].Benchmark.Name() != res[i].Benchmark.Name() {
			t.Fatalf("result %d benchmark identity lost", i)
		}
	}
}

func TestLoadResultsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := SaveResults(path, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadResults(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestKiviatFromSpace(t *testing.T) {
	res := profileSubset(t, 12)
	s := NewSpace(res)
	d, err := s.Kiviat(0, []int{0, 6, 19, 43})
	if err != nil {
		t.Fatal(err)
	}
	out := d.ASCII(5)
	if !strings.Contains(out, s.Names[0]) {
		t.Error("kiviat missing title")
	}
	if _, err := s.Kiviat(-1, []int{0}); err == nil {
		t.Error("out-of-range benchmark accepted")
	}
}

func TestPredictIPCFromInherentBehaviour(t *testing.T) {
	res := profileSubset(t, 3) // ~41 benchmarks
	s := NewSpace(res)
	ev, err := s.PredictIPC(nil, 0, 5) // EV56 IPC from all 47 chars
	if err != nil {
		t.Fatal(err)
	}
	if ev.RankCorrelation < 0.5 {
		t.Errorf("rank correlation = %g; inherent behaviour should predict IPC ordering", ev.RankCorrelation)
	}
	if _, err := s.PredictIPC(nil, 99, 5); err == nil {
		t.Error("bad metric index accepted")
	}
	if _, err := s.PredictIPC(nil, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestHierarchicalClusterOnSpace(t *testing.T) {
	res := profileSubset(t, 8)
	s := NewSpace(res)
	d := s.HierarchicalCluster(nil, CompleteLinkage)
	if len(d.Merges) != s.Len()-1 {
		t.Fatalf("got %d merges for %d benchmarks", len(d.Merges), s.Len())
	}
	assign := d.Cut(4)
	seen := map[int]bool{}
	for _, c := range assign {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Errorf("Cut(4) produced %d clusters", len(seen))
	}
}

func TestSpaceDistancesConsistent(t *testing.T) {
	res := profileSubset(t, 10)
	s := NewSpace(res)
	all := make([]int, NumChars)
	for i := range all {
		all[i] = i
	}
	full := s.SubsetDistances(all)
	for i := range full {
		if math.Abs(full[i]-s.CharDist[i]) > 1e-9 {
			t.Fatal("subset-all distances disagree with CharDist")
		}
	}
	if rho := s.SubsetRho(all); math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho of full subset = %g", rho)
	}
}

// TestRegistryAccessorsReturnCopies pins the aliasing contract of the
// public registry accessors: callers mutating returned slices must not be
// able to corrupt the Table I registry.
func TestRegistryAccessorsReturnCopies(t *testing.T) {
	b := Benchmarks()
	b[0].Program = "mutated"
	if Benchmarks()[0].Program == "mutated" {
		t.Error("Benchmarks exposes registry storage")
	}
	s := BenchmarksBySuite("SPEC2000")
	s[0].Program = "mutated"
	if BenchmarksBySuite("SPEC2000")[0].Program == "mutated" {
		t.Error("BenchmarksBySuite exposes registry storage")
	}
	n := SuiteNames()
	n[0] = "mutated"
	if SuiteNames()[0] == "mutated" {
		t.Error("SuiteNames exposes registry storage")
	}
}

// TestZeroConfigMatchesDefaultConfig pins the Config zero-value
// contract: Profile(b, Config{}) must measure exactly what
// Profile(b, DefaultConfig()) measures. Before the NoMemDeps inversion,
// a zero Config silently disabled store-to-load dependence tracking and
// produced different ILP characteristics.
func TestZeroConfigMatchesDefaultConfig(t *testing.T) {
	b, err := BenchmarkByName("MiBench/qsort/large")
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Profile(b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Profile(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if zero.Insts != def.Insts {
		t.Fatalf("instruction counts diverge: %d vs %d", zero.Insts, def.Insts)
	}
	if zero.Chars != def.Chars {
		t.Error("zero Config characteristic vector diverges from DefaultConfig")
	}
	if zero.HPC != def.HPC {
		t.Error("zero Config HPC vector diverges from DefaultConfig")
	}
}
