package mica

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (go test -bench=.). Each BenchmarkTableX/FigureX
// regenerates that experiment from a shared profiling run and reports the
// paper-comparable statistic via b.ReportMetric, so `go test -bench=.`
// prints the same rows/series the paper reports:
//
//	Table I    benchmark registry               (122 rows)
//	Table II   the 47 characteristics
//	Figure 1   HPC vs uarch-indep distance      rho (paper 0.46)
//	Table III  tuple quadrants                  FN/TP/TN/FP (paper 0.2/56.9/1.8/41.1%)
//	Figure 2/3 bzip2 vs blast pitfall pair      per-space normalized distance
//	Figure 4   ROC curves                       AUC all/GA/CE (paper 0.72/0.69/0.67-0.64)
//	Figure 5   correlation vs subset size       GA rho (paper 0.876 at 8)
//	Table IV   GA-selected characteristics      subset size (paper 8)
//	Figure 6   k-means + BIC clusters           K (paper 15)
//
// Ablation benches cover the DESIGN.md design choices: PPM order, ILP
// window algorithm cost, memory-dependence tracking, GA population size,
// k-means seeding, and trace-budget stability.

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"mica/internal/cluster"
	"mica/internal/featsel"
	"mica/internal/ga"
	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/stats"
	"mica/internal/trace"
	"mica/internal/uarch"
	"mica/internal/vm"
)

// benchBudget keeps the shared profiling run fast while exercising every
// benchmark's steady-state behaviour.
const benchBudget = 60_000

var (
	benchOnce    sync.Once
	benchProfile []ProfileResult
	benchAn      *Analysis
	benchErr     error
)

// benchData profiles all 122 benchmarks once per `go test -bench` run and
// analyzes them with the paper's configuration.
func benchData(b *testing.B) ([]ProfileResult, *Analysis) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.InstBudget = benchBudget
		benchProfile, benchErr = ProfileAll(cfg)
		if benchErr != nil {
			return
		}
		acfg := DefaultAnalysisConfig()
		benchAn = Analyze(benchProfile, acfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchProfile, benchAn
}

// --- per-table / per-figure benches ---

func BenchmarkTableI(b *testing.B) {
	results, _ := benchData(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = RenderTableI(results)
	}
	b.ReportMetric(float64(len(results)), "benchmarks")
	_ = out
}

func BenchmarkTableII(b *testing.B) {
	results, _ := benchData(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = RenderTableII(results)
	}
	b.ReportMetric(float64(NumChars), "characteristics")
	_ = out
}

func BenchmarkFigure1(b *testing.B) {
	results, an := benchData(b)
	b.ResetTimer()
	var rho float64
	for i := 0; i < b.N; i++ {
		s := NewSpace(results)
		rho = s.DistanceCorrelation()
	}
	b.ReportMetric(rho, "rho")
	_ = an
}

func BenchmarkTableIII(b *testing.B) {
	_, an := benchData(b)
	b.ResetTimer()
	var q Quadrants
	for i := 0; i < b.N; i++ {
		q = an.Space.ClassifyTuples(DefaultThresholdFraction)
	}
	fn, tp, tn, fp := q.Fractions()
	b.ReportMetric(fn*100, "FN%")
	b.ReportMetric(tp*100, "TP%")
	b.ReportMetric(tn*100, "TN%")
	b.ReportMetric(fp*100, "FP%")
}

func BenchmarkFigure2(b *testing.B) {
	_, an := benchData(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = an.RenderFigure2()
	}
	if len(out) < 100 {
		b.Fatal("figure 2 empty")
	}
}

func BenchmarkFigure3(b *testing.B) {
	_, an := benchData(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = an.RenderFigure3()
	}
	if len(out) < 100 {
		b.Fatal("figure 3 empty")
	}
}

func BenchmarkFigure4(b *testing.B) {
	_, an := benchData(b)
	b.ResetTimer()
	var aucAll, aucGA float64
	for i := 0; i < b.N; i++ {
		aucAll = AUC(an.Space.ROCCurve(nil, DefaultThresholdFraction))
		aucGA = AUC(an.Space.ROCCurve(an.GA.Selected, DefaultThresholdFraction))
	}
	b.ReportMetric(aucAll, "AUC-all")
	b.ReportMetric(aucGA, "AUC-GA")
	b.ReportMetric(an.AUCCE[17], "AUC-CE17")
}

func BenchmarkFigure5(b *testing.B) {
	_, an := benchData(b)
	b.ResetTimer()
	var curve []float64
	for i := 0; i < b.N; i++ {
		curve = an.Space.CECurve()
	}
	b.ReportMetric(an.GA.Rho, "GA-rho")
	b.ReportMetric(curve[16], "CE-rho-17")
}

func BenchmarkTableIV(b *testing.B) {
	results, _ := benchData(b)
	s := NewSpace(results)
	b.ResetTimer()
	var res GAResult
	for i := 0; i < b.N; i++ {
		res = s.GASelect(2006 + int64(i))
	}
	b.ReportMetric(float64(len(res.Selected)), "selected")
	b.ReportMetric(res.Rho, "rho")
}

func BenchmarkFigure6(b *testing.B) {
	_, an := benchData(b)
	b.ResetTimer()
	var sel ClusterSelection
	for i := 0; i < b.N; i++ {
		sel = an.Space.Cluster(an.GA.Selected, 70, 2006)
	}
	b.ReportMetric(float64(sel.Best.K), "K")
}

// --- profiling and simulator throughput benches ---

// BenchmarkProfileBenchmark measures full two-space profiling throughput
// in dynamic instructions per second.
func BenchmarkProfileBenchmark(b *testing.B) {
	bench, err := BenchmarkByName("SPEC2000/gzip/program")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.InstBudget = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Profile(bench, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.InstBudget)*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkProfilerHotPath measures the end-to-end profiling hot path —
// the VM→observer→analyzer pipeline that cmd/mica-bench tracks in
// BENCH_profile.json — in dynamic instructions per second for the three
// standard configurations.
func BenchmarkProfilerHotPath(b *testing.B) {
	bench, err := BenchmarkByName("SPEC2000/gzip/program")
	if err != nil {
		b.Fatal(err)
	}
	const budget = 200_000
	run := func(b *testing.B, profile func() (uint64, error)) {
		b.Helper()
		var n uint64
		for i := 0; i < b.N; i++ {
			ran, err := profile()
			if err != nil {
				b.Fatal(err)
			}
			n += ran
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
	}
	b.Run("raw-vm", func(b *testing.B) {
		run(b, func() (uint64, error) {
			m, err := bench.Instantiate()
			if err != nil {
				return 0, err
			}
			n, err := m.Run(budget, nil)
			if err != nil && !errors.Is(err, vm.ErrBudget) {
				return 0, err
			}
			return n, nil
		})
	})
	b.Run("mica", func(b *testing.B) {
		cfg := DefaultConfig()
		cfg.InstBudget = budget
		cfg.SkipHPC = true
		run(b, func() (uint64, error) {
			res, err := Profile(bench, cfg)
			return res.Insts, err
		})
	})
	b.Run("mica+hpc", func(b *testing.B) {
		cfg := DefaultConfig()
		cfg.InstBudget = budget
		run(b, func() (uint64, error) {
			res, err := Profile(bench, cfg)
			return res.Insts, err
		})
	})
}

// BenchmarkPhaseHotPath measures phase-analysis throughput
// (phase-profiled MIPS) for the two configurations cmd/mica-bench
// tracks in BENCH_phases.json: the naive reference path that allocates
// a fresh profiler per interval, and the streaming path that pools one
// profiler across all intervals (Reset in place).
func BenchmarkPhaseHotPath(b *testing.B) {
	bench, err := BenchmarkByName("SPEC2000/gzip/program")
	if err != nil {
		b.Fatal(err)
	}
	pcfg := phases.Config{IntervalLen: 1_000, MaxIntervals: 200, MaxK: 4, Seed: 2006}
	run := func(b *testing.B, analyze func(m *vm.Machine) (*phases.Result, error)) {
		b.Helper()
		var n uint64
		for i := 0; i < b.N; i++ {
			m, err := bench.Instantiate()
			if err != nil {
				b.Fatal(err)
			}
			res, err := analyze(m)
			if err != nil {
				b.Fatal(err)
			}
			n += res.TotalInsts()
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
	}
	b.Run("naive", func(b *testing.B) {
		run(b, func(m *vm.Machine) (*phases.Result, error) {
			return phases.AnalyzeUnpooled(m, pcfg)
		})
	})
	b.Run("pooled", func(b *testing.B) {
		prof := micachar.NewProfiler(pcfg.Options)
		run(b, func(m *vm.Machine) (*phases.Result, error) {
			return phases.AnalyzeWith(m, prof, pcfg)
		})
	})
}

// BenchmarkClusterSweep measures the SelectK BIC sweep — the
// clustering back half of phase analysis that cmd/mica-bench -cluster
// tracks in BENCH_phases.json — on a synthetic overlapping-blob matrix
// shaped like a z-scored interval space. Reported in million
// row-assignments per second (rows x maxK / wall time).
func BenchmarkClusterSweep(b *testing.B) {
	const rows, centers, maxK = 20_000, 12, 6
	m := cluster.SyntheticPhaseBlobs(rows, centers, 2006)
	run := func(b *testing.B, sweep func() cluster.Selection) {
		b.Helper()
		var sel cluster.Selection
		for i := 0; i < b.N; i++ {
			sel = sweep()
		}
		b.ReportMetric(float64(rows*maxK)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		b.ReportMetric(float64(sel.Best.K), "K")
	}
	b.Run("naive", func(b *testing.B) {
		run(b, func() cluster.Selection { return cluster.SelectKNaive(m, maxK, 0.9, 2006) })
	})
	b.Run("parallel-minibatch", func(b *testing.B) {
		run(b, func() cluster.Selection {
			return cluster.SelectKOpt(m, maxK, 0.9, 2006, cluster.SweepOptions{Engine: cluster.EngineMiniBatch})
		})
	})
}

// BenchmarkVMInterpreter measures bare interpreter speed without
// observers.
func BenchmarkVMInterpreter(b *testing.B) {
	bench, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bench.Instantiate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		ran, err := m.Run(100_000, nil)
		if err != nil && !errors.Is(err, vm.ErrBudget) {
			b.Fatal(err)
		}
		n += ran
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "insts/s")
}

// --- ablation benches (DESIGN.md section 5) ---

// BenchmarkAblationPPMOrder sweeps the PPM maximum order and reports the
// GAg predictability measured on a branchy benchmark at each order.
func BenchmarkAblationPPMOrder(b *testing.B) {
	bench, err := BenchmarkByName("SPEC2000/crafty/ref")
	if err != nil {
		b.Fatal(err)
	}
	for _, order := range []int{1, 2, 4, 8} {
		order := order
		b.Run(orderName(order), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				m, err := bench.Instantiate()
				if err != nil {
					b.Fatal(err)
				}
				ppm := micachar.NewPPMAnalyzer(order)
				if _, err := m.Run(60_000, ppm); !errors.Is(err, vm.ErrBudget) {
					b.Fatal(err)
				}
				acc = ppm.Accuracy(micachar.PPMGAg)
			}
			b.ReportMetric(acc, "GAg-accuracy")
		})
	}
}

func orderName(o int) string {
	return fmt.Sprintf("order%d", o)
}

// BenchmarkAblationILPWindow measures the cost of the O(N) ring-buffer
// window model per window configuration.
func BenchmarkAblationILPWindow(b *testing.B) {
	bench, err := BenchmarkByName("MediaBench/mpeg2/encode")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{32, 256} {
		w := w
		b.Run(windowName(w), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				m, err := bench.Instantiate()
				if err != nil {
					b.Fatal(err)
				}
				ilp := micachar.NewILPAnalyzer([]int{w}, true)
				if _, err := m.Run(60_000, ilp); !errors.Is(err, vm.ErrBudget) {
					b.Fatal(err)
				}
				ipc = ilp.IPC(0)
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

func windowName(w int) string {
	if w >= 100 {
		return "w256"
	}
	return "w32"
}

// BenchmarkAblationMemDeps compares the idealized ILP with and without
// store-to-load dependence tracking.
func BenchmarkAblationMemDeps(b *testing.B) {
	bench, err := BenchmarkByName("MiBench/qsort/large")
	if err != nil {
		b.Fatal(err)
	}
	for _, track := range []bool{true, false} {
		track := track
		name := "tracked"
		if !track {
			name = "ignored"
		}
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				m, err := bench.Instantiate()
				if err != nil {
					b.Fatal(err)
				}
				ilp := micachar.NewILPAnalyzer([]int{128}, track)
				if _, err := m.Run(60_000, ilp); !errors.Is(err, vm.ErrBudget) {
					b.Fatal(err)
				}
				ipc = ilp.IPC(0)
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationGA sweeps the GA population size; larger populations
// buy fitness at linear cost.
func BenchmarkAblationGA(b *testing.B) {
	results, _ := benchData(b)
	norm := stats.ZScoreNormalize(NewSpace(results).Chars)
	cache := featsel.NewDistanceCache(norm)
	fitness := func(genes []bool) float64 {
		k := 0
		for _, g := range genes {
			if g {
				k++
			}
		}
		if k == 0 {
			return -1
		}
		return cache.Rho(genes) * (1 - float64(k)/float64(NumChars))
	}
	for _, pop := range []int{16, 64} {
		pop := pop
		name := "pop16"
		if pop == 64 {
			name = "pop64"
		}
		b.Run(name, func(b *testing.B) {
			var fit float64
			for i := 0; i < b.N; i++ {
				res := ga.Run(ga.Config{Genes: NumChars, PopSize: pop,
					MaxGenerations: 60, StallGenerations: 15, Seed: int64(i)}, fitness)
				fit = res.Best.Fitness
			}
			b.ReportMetric(fit, "fitness")
		})
	}
}

// BenchmarkAblationKMeansSeed compares k-means++ seeding against naive
// first-K seeding by final SSE on the key space.
func BenchmarkAblationKMeansSeed(b *testing.B) {
	_, an := benchData(b)
	m := an.Space.NormChars.SelectColumns(an.GA.Selected)
	for _, pp := range []bool{true, false} {
		pp := pp
		name := "plusplus"
		if !pp {
			name = "firstk"
		}
		b.Run(name, func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				var res cluster.Result
				if pp {
					res = cluster.KMeans(m, 15, int64(i))
				} else {
					res = cluster.KMeansNaiveSeed(m, 15, int64(i))
				}
				sse = res.SSE
			}
			b.ReportMetric(sse, "SSE")
		})
	}
}

// BenchmarkAblationBudget measures characteristic stability against the
// trace budget: the normalized vector distance between a short and a 4X
// longer trace of the same benchmark.
func BenchmarkAblationBudget(b *testing.B) {
	bench, err := BenchmarkByName("CommBench/drr/drr")
	if err != nil {
		b.Fatal(err)
	}
	for _, budget := range []uint64{25_000, 100_000} {
		budget := budget
		name := "b25k"
		if budget == 100_000 {
			name = "b100k"
		}
		b.Run(name, func(b *testing.B) {
			var drift float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.SkipHPC = true
				cfg.InstBudget = budget
				short, err := Profile(bench, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cfg.InstBudget = budget * 4
				long, err := Profile(bench, cfg)
				if err != nil {
					b.Fatal(err)
				}
				drift = vectorDrift(short.Chars, long.Chars)
			}
			b.ReportMetric(drift, "drift")
		})
	}
}

// vectorDrift is the mean relative per-characteristic difference, with
// working-set counts compared on a log scale so trace-length growth does
// not dominate.
func vectorDrift(a, c Vector) float64 {
	sum, n := 0.0, 0
	for i := range a {
		x, y := a[i], c[i]
		if i >= 19 && i <= 22 { // working-set counts grow with trace length
			x, y = math.Log1p(x), math.Log1p(y)
		}
		den := math.Abs(x) + math.Abs(y)
		if den == 0 {
			continue
		}
		sum += math.Abs(x-y) / den
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkAblationCorrelationMetric compares Pearson (the paper's
// choice) with Spearman rank correlation for the Figure 1 statistic.
func BenchmarkAblationCorrelationMetric(b *testing.B) {
	_, an := benchData(b)
	b.Run("pearson", func(b *testing.B) {
		var rho float64
		for i := 0; i < b.N; i++ {
			rho = stats.Pearson(an.Space.HPCDist, an.Space.CharDist)
		}
		b.ReportMetric(rho, "rho")
	})
	b.Run("spearman", func(b *testing.B) {
		var rho float64
		for i := 0; i < b.N; i++ {
			rho = stats.Spearman(an.Space.HPCDist, an.Space.CharDist)
		}
		b.ReportMetric(rho, "rho")
	})
}

// BenchmarkHierarchicalClustering measures the dendrogram alternative to
// Figure 6's k-means (the clustering style of the paper's prior work).
func BenchmarkHierarchicalClustering(b *testing.B) {
	_, an := benchData(b)
	var k int
	for i := 0; i < b.N; i++ {
		dend := an.Space.HierarchicalCluster(an.GA.Selected, cluster.CompleteLinkage)
		assign := dend.Cut(15)
		seen := map[int]bool{}
		for _, c := range assign {
			seen[c] = true
		}
		k = len(seen)
	}
	b.ReportMetric(float64(k), "clusters")
}

// BenchmarkPrediction evaluates leave-one-out IPC prediction from the
// full 47-D space versus the GA key subspace (extension, after the
// paper's companion PACT 2006 work). Comparable rank correlations mean
// the key subset keeps the space's predictive power.
func BenchmarkPrediction(b *testing.B) {
	_, an := benchData(b)
	b.Run("all47", func(b *testing.B) {
		var ev PredictionEval
		for i := 0; i < b.N; i++ {
			var err error
			ev, err = an.Space.PredictIPC(nil, 0, 5)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(ev.RankCorrelation, "rank-corr")
	})
	b.Run("keyspace", func(b *testing.B) {
		var ev PredictionEval
		for i := 0; i < b.N; i++ {
			var err error
			ev, err = an.Space.PredictIPC(an.GA.Selected, 0, 5)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(ev.RankCorrelation, "rank-corr")
	})
}

// BenchmarkEV56 and BenchmarkEV67 measure machine-model throughput.
func BenchmarkEV56(b *testing.B) {
	benchMachineModel(b, false)
}

func BenchmarkEV67(b *testing.B) {
	benchMachineModel(b, true)
}

func benchMachineModel(b *testing.B, ooo bool) {
	bench, err := BenchmarkByName("SPEC2000/twolf/ref")
	if err != nil {
		b.Fatal(err)
	}
	var n uint64
	var ipc float64
	for i := 0; i < b.N; i++ {
		m, err := bench.Instantiate()
		if err != nil {
			b.Fatal(err)
		}
		hpc := newSingleModel(ooo)
		ran, err := m.Run(100_000, hpc.obs)
		if err != nil && !errors.Is(err, vm.ErrBudget) {
			b.Fatal(err)
		}
		n += ran
		ipc = hpc.ipc()
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "insts/s")
	b.ReportMetric(ipc, "IPC")
}

type singleModel struct {
	obs trace.Observer
	ipc func() float64
}

func newSingleModel(ooo bool) singleModel {
	if ooo {
		m := uarch.NewEV67(uarch.DefaultEV67Config())
		return singleModel{obs: m, ipc: m.IPC}
	}
	m := uarch.NewEV56(uarch.DefaultEV56Config())
	return singleModel{obs: m, ipc: m.IPC}
}

// BenchmarkReducedPipeline measures phase-aware reduced profiling —
// the two configurations cmd/mica-bench -reduced tracks in
// BENCH_phases.json: the exact matched-grid full characterization
// (full 47-dim + HPC on every interval) and the two-pass reduced
// pipeline (sampled key-characteristic cheap pass, clustering, full
// characterization only on per-phase measured intervals). The metric
// is effective MIPS: trace instructions per second of wall time.
func BenchmarkReducedPipeline(b *testing.B) {
	bench, err := BenchmarkByName("SPEC2000/gzip/program")
	if err != nil {
		b.Fatal(err)
	}
	cfg := ReducedConfig{Phase: PhaseConfig{IntervalLen: 2_500, MaxIntervals: 80, MaxK: 6, Seed: 2006}}
	b.Run("full-grid", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			ex, err := ProfileExact(bench, cfg)
			if err != nil {
				b.Fatal(err)
			}
			n += ex.TotalInsts()
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
	})
	b.Run("reduced", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			rr, err := AnalyzeReduced(bench, cfg)
			if err != nil {
				b.Fatal(err)
			}
			n += rr.TotalInsts()
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
	})
}

// BenchmarkReducedStorePipeline measures store-backed reduced
// profiling — the phases-reduced-store configuration cmd/mica-bench
// -reduced tracks in BENCH_phases.json: the cheap sampled pass lands
// in an interval-vector store and the full-characterization replay
// gathers each benchmark's representatives back through the
// decoded-shard cache. Effective MIPS: trace instructions per second
// of end-to-end wall time over the set.
func BenchmarkReducedStorePipeline(b *testing.B) {
	bs := make([]Benchmark, 0, 3)
	for _, name := range []string{
		"SPEC2000/gzip/program", "MiBench/sha/large", "MiBench/FFT/fft-large",
	} {
		bench, err := BenchmarkByName(name)
		if err != nil {
			b.Fatal(err)
		}
		bs = append(bs, bench)
	}
	cfg := ReducedPipelineConfig{Reduced: ReducedConfig{
		Phase: PhaseConfig{IntervalLen: 2_500, MaxIntervals: 80, MaxK: 6, Seed: 2006},
	}}
	var n uint64
	for i := 0; i < b.N; i++ {
		results, stats, err := AnalyzeReducedStore(bs, cfg, StoreOptions{Dir: filepath.Join(b.TempDir(), "store")})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Cache.Decodes == 0 {
			b.Fatal("replay bypassed the decoded-shard cache")
		}
		for _, r := range results {
			n += r.Result.TotalInsts()
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkJointStorePipeline measures registry-scale joint phase
// analysis — the configurations cmd/mica-bench -joint tracks in
// BENCH_phases.json: the in-memory flat-matrix path against the
// store-backed streaming path (characterize into float32 shards, then
// cluster by streaming rows shard-by-shard). Effective MIPS: profiled
// trace instructions per second of end-to-end wall time.
func BenchmarkJointStorePipeline(b *testing.B) {
	bs := make([]Benchmark, 0, 4)
	for _, name := range []string{
		"MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program", "MiBench/FFT/fft-large",
	} {
		bench, err := BenchmarkByName(name)
		if err != nil {
			b.Fatal(err)
		}
		bs = append(bs, bench)
	}
	pcfg := PhasePipelineConfig{Phase: PhaseConfig{IntervalLen: 1_000, MaxIntervals: 40, MaxK: 4, Seed: 2006}}
	b.Run("inmemory", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			j, err := AnalyzePhasesJoint(bs, pcfg)
			if err != nil {
				b.Fatal(err)
			}
			n += j.TotalInsts()
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
	})
	b.Run("store", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			j, _, err := AnalyzePhasesJointStore(bs, pcfg, StoreOptions{Dir: filepath.Join(b.TempDir(), "store")})
			if err != nil {
				b.Fatal(err)
			}
			n += j.TotalInsts()
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
	})
}
