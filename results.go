package mica

import (
	"encoding/json"
	"fmt"
	"os"
)

// resultFile is the JSON on-disk form of a profiling run, so the
// expensive measurement step can be cached between tool invocations.
type resultFile struct {
	InstBudget uint64       `json:"inst_budget"`
	Results    []resultJSON `json:"results"`
}

type resultJSON struct {
	Name  string    `json:"name"`
	Chars []float64 `json:"chars"`
	HPC   []float64 `json:"hpc"`
	Insts uint64    `json:"insts"`
}

// SaveResults writes profiling results to a JSON file.
func SaveResults(path string, budget uint64, results []ProfileResult) error {
	rf := resultFile{InstBudget: budget}
	for _, r := range results {
		rf.Results = append(rf.Results, resultJSON{
			Name:  r.Benchmark.Name(),
			Chars: append([]float64(nil), r.Chars[:]...),
			HPC:   append([]float64(nil), r.HPC[:]...),
			Insts: r.Insts,
		})
	}
	data, err := json.MarshalIndent(rf, "", " ")
	if err != nil {
		return fmt.Errorf("mica: encoding results: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadResults reads profiling results saved by SaveResults. Benchmarks
// are re-resolved by name against the registry, so a stale file naming
// unknown benchmarks fails loudly.
func LoadResults(path string) ([]ProfileResult, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var rf resultFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, 0, fmt.Errorf("mica: decoding %s: %w", path, err)
	}
	out := make([]ProfileResult, 0, len(rf.Results))
	for _, rj := range rf.Results {
		b, err := BenchmarkByName(rj.Name)
		if err != nil {
			return nil, 0, err
		}
		if len(rj.Chars) != NumChars || len(rj.HPC) != NumHPCMetrics {
			return nil, 0, fmt.Errorf("mica: %s has %d/%d metrics, want %d/%d",
				rj.Name, len(rj.Chars), len(rj.HPC), NumChars, NumHPCMetrics)
		}
		r := ProfileResult{Benchmark: b, Insts: rj.Insts}
		copy(r.Chars[:], rj.Chars)
		copy(r.HPC[:], rj.HPC)
		out = append(out, r)
	}
	return out, rf.InstBudget, nil
}
