package mica

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mica/internal/phases"
)

// storeTestConfig keeps store-pipeline tests fast: a handful of short
// intervals per benchmark.
var storeTestConfig = PhaseConfig{IntervalLen: 500, MaxIntervals: 8, MaxK: 3, Seed: 2006}

func storeBenchmarks(t *testing.T, names ...string) []Benchmark {
	t.Helper()
	bs := make([]Benchmark, len(names))
	for i, n := range names {
		b, err := BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs[i] = b
	}
	return bs
}

// TestAnalyzePhasesJointStoreMatchesInMemory is the top-level
// differential of the tentpole: on a real benchmark set, the
// store-backed joint vocabulary equals the in-memory AnalyzeJoint
// vocabulary — bit-identical against the float32-rounded input (what
// a float32 store holds by definition), and identical end-to-end
// against the raw in-memory pipeline on this set.
func TestAnalyzePhasesJointStoreMatchesInMemory(t *testing.T) {
	bs := storeBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program")
	pcfg := PhasePipelineConfig{Phase: storeTestConfig, Workers: 2}

	want, err := AnalyzePhasesJoint(bs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := AnalyzePhasesJointStore(bs, pcfg, StoreOptions{Dir: filepath.Join(t.TempDir(), "store")})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Characterized) != len(bs) || len(stats.Reused) != 0 {
		t.Fatalf("fresh build stats %+v, want all characterized", stats)
	}
	if got.Vectors != nil {
		t.Error("store-backed result materialized the joint matrix")
	}
	if !reflect.DeepEqual(got.Benchmarks, want.Benchmarks) ||
		!reflect.DeepEqual(got.Rows, want.Rows) ||
		!reflect.DeepEqual(got.RowInsts, want.RowInsts) {
		t.Error("store-backed provenance diverges from in-memory")
	}
	if got.K != want.K || !reflect.DeepEqual(got.Assign, want.Assign) ||
		!reflect.DeepEqual(got.Representatives, want.Representatives) ||
		!reflect.DeepEqual(got.Occupancy, want.Occupancy) {
		t.Errorf("store-backed vocabulary diverges from in-memory: K %d vs %d", got.K, want.K)
	}
}

// TestCharacterizeToStoreIncremental is the incremental acceptance
// test: a rerun that changes one benchmark re-characterizes only that
// benchmark, observed through the pipeline progress counter.
func TestCharacterizeToStoreIncremental(t *testing.T) {
	names := []string{"MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program"}
	bs := storeBenchmarks(t, names...)
	dir := filepath.Join(t.TempDir(), "store")
	profiled := 0
	pcfg := PhasePipelineConfig{
		Phase:    storeTestConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { profiled++ },
	}
	inc := StoreOptions{Dir: dir, Incremental: true}

	// Fresh build characterizes everything.
	st0, stats, err := CharacterizeToStore(bs, pcfg, inc)
	if err != nil {
		t.Fatal(err)
	}
	st0.Close()
	if profiled != len(bs) || len(stats.Characterized) != len(bs) {
		t.Fatalf("fresh build characterized %d (progress %d), want %d", len(stats.Characterized), profiled, len(bs))
	}
	baseline, err := phases.AnalyzeJointStore(mustOpenStore(t, dir), storeTestConfig, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Unchanged rerun: zero profiling, identical vocabulary.
	profiled = 0
	st, stats, err := CharacterizeToStore(bs, pcfg, inc)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if profiled != 0 || len(stats.Characterized) != 0 || len(stats.Reused) != len(bs) {
		t.Fatalf("unchanged rerun profiled %d, stats %+v", profiled, stats)
	}
	again, err := phases.AnalyzeJointStore(st, storeTestConfig, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, again) {
		t.Error("vocabulary from reused shards diverges from the fresh build")
	}

	// "Change" one benchmark by removing its shard file: only it is
	// re-characterized.
	if err := os.Remove(filepath.Join(dir, shardFileOf(t, dir, names[1]))); err != nil {
		t.Fatal(err)
	}
	profiled = 0
	st1, stats, err := CharacterizeToStore(bs, pcfg, inc)
	if err != nil {
		t.Fatal(err)
	}
	st1.Close()
	if profiled != 1 || !reflect.DeepEqual(stats.Characterized, []string{names[1]}) {
		t.Fatalf("one-benchmark change re-characterized %v (progress %d), want just %s",
			stats.Characterized, profiled, names[1])
	}

	// Membership change: adding one benchmark characterizes only it.
	grown := append(append([]Benchmark(nil), bs...), storeBenchmarks(t, "MiBench/FFT/fft-large")...)
	profiled = 0
	st2, stats, err := CharacterizeToStore(grown, pcfg, inc)
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if profiled != 1 || !reflect.DeepEqual(stats.Characterized, []string{"MiBench/FFT/fft-large"}) {
		t.Fatalf("grown set re-characterized %v, want just the new benchmark", stats.Characterized)
	}

	// Dropping a benchmark prunes its shard and profiles nothing.
	droppedFile := shardFileOf(t, dir, names[0])
	shrunk := grown[1:]
	profiled = 0
	st3, stats, err := CharacterizeToStore(shrunk, pcfg, inc)
	if err != nil {
		t.Fatal(err)
	}
	st3.Close()
	if profiled != 0 || len(stats.Reused) != len(shrunk) {
		t.Fatalf("shrunk set stats %+v (progress %d)", stats, profiled)
	}
	if _, err := os.Stat(filepath.Join(dir, droppedFile)); !os.IsNotExist(err) {
		t.Error("dropped benchmark's shard not pruned")
	}

	// A configuration change invalidates every shard.
	changed := pcfg
	changed.Phase.IntervalLen = 600
	profiled = 0
	st4, stats, err := CharacterizeToStore(shrunk, changed, inc)
	if err != nil {
		t.Fatal(err)
	}
	st4.Close()
	if profiled != len(shrunk) || len(stats.Reused) != 0 {
		t.Fatalf("config change reused %v, want full rebuild", stats.Reused)
	}
}

// mustOpenStore opens a committed store and immediately releases its
// lock — test reads do not need protection from concurrent writers,
// and a held shared lock would block the rebuilds these tests exercise
// (Create takes the lock exclusive).
func mustOpenStore(t *testing.T, dir string) *IVStore {
	t.Helper()
	st, err := OpenIVStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	return st
}

// shardFileOf resolves a benchmark's shard file from the committed
// manifest (file names embed the configuration stamp).
func shardFileOf(t *testing.T, dir, name string) string {
	t.Helper()
	for _, sh := range mustOpenStore(t, dir).Shards() {
		if sh.Name == name {
			return sh.File
		}
	}
	t.Fatalf("no shard for %s in %s", name, dir)
	return ""
}

// TestCharacterizeToStoreQuantized: the quantized store runs the same
// pipeline and analysis end to end, and its shards are roughly a
// quarter the size of the float32 ones.
func TestCharacterizeToStoreQuantized(t *testing.T) {
	bs := storeBenchmarks(t, "MiBench/sha/large", "CommBench/drr/drr")
	// Enough intervals that the per-column quantization scales (16
	// bytes each) amortize against the row data.
	pcfg := PhasePipelineConfig{
		Phase:   PhaseConfig{IntervalLen: 100, MaxIntervals: 200, MaxK: 3, Seed: 2006},
		Workers: 1,
	}
	base := t.TempDir()
	stF, _, err := CharacterizeToStore(bs, pcfg, StoreOptions{Dir: filepath.Join(base, "f32")})
	if err != nil {
		t.Fatal(err)
	}
	stF.Close()
	stQ, _, err := CharacterizeToStore(bs, pcfg, StoreOptions{Dir: filepath.Join(base, "q8"), Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	stQ.Close()
	sizeOf := func(st *IVStore) int64 {
		var total int64
		for _, sh := range st.Shards() {
			fi, err := os.Stat(filepath.Join(st.Dir(), sh.File))
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
		return total
	}
	f, q := sizeOf(stF), sizeOf(stQ)
	if q*3 >= f {
		t.Errorf("quant8 store %d bytes vs float32 %d — expected well under a third", q, f)
	}
	j, err := phases.AnalyzeJointStore(stQ, pcfg.Phase, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j.K < 1 || len(j.Assign) != stQ.NumRows() {
		t.Fatalf("quantized joint vocabulary malformed: K=%d", j.K)
	}
	// An incremental rerun under the other encoding must rebuild, not
	// adopt incompatible shards.
	_, stats, err := CharacterizeToStore(bs, pcfg, StoreOptions{Dir: filepath.Join(base, "q8"), Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Reused) != 0 {
		t.Error("float32 request reused quant8 shards")
	}
}

// TestCharacterizeToStoreRefusesCorrupt: an unreadable store directory
// is an error naming the path, never silently rebuilt over.
func TestCharacterizeToStoreRefusesCorrupt(t *testing.T) {
	bs := storeBenchmarks(t, "MiBench/sha/large")
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := CharacterizeToStore(bs, PhasePipelineConfig{Phase: storeTestConfig, Workers: 1},
		StoreOptions{Dir: dir, Incremental: true})
	if err == nil {
		t.Fatal("corrupt store rebuilt over")
	}
	if !strings.Contains(err.Error(), dir) || !strings.Contains(err.Error(), "not a usable") {
		t.Fatalf("error %q does not refuse by name", err)
	}
}

// TestJointStoreRegistryScale is the registry-scale acceptance run:
// the full 122-benchmark registry at 1000 intervals per benchmark,
// characterized into a store and clustered entirely store-backed. The
// point is that it completes with bounded memory (rows are never
// materialized as one matrix) and yields a structurally sound shared
// vocabulary.
func TestJointStoreRegistryScale(t *testing.T) {
	if testing.Short() {
		t.Skip("registry-scale store run skipped in -short mode")
	}
	bs := Benchmarks()
	pcfg := PhasePipelineConfig{
		Phase:   PhaseConfig{IntervalLen: 400, MaxIntervals: 1000, MaxK: 3, Seed: 2006},
		Workers: 4,
	}
	j, stats, err := AnalyzePhasesJointStore(bs, pcfg, StoreOptions{Dir: filepath.Join(t.TempDir(), "registry")})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Characterized) != len(bs) {
		t.Fatalf("characterized %d benchmarks, want %d", len(stats.Characterized), len(bs))
	}
	if len(j.Benchmarks) != len(bs) || len(j.Rows) < 100*1000 {
		t.Fatalf("joint space has %d benchmarks, %d rows — want the full registry at >=1k intervals",
			len(j.Benchmarks), len(j.Rows))
	}
	if j.K < 1 || j.K > 3 {
		t.Fatalf("selected K=%d outside the sweep", j.K)
	}
	for b := range j.Benchmarks {
		sum := 0.0
		for c := 0; c < j.K; c++ {
			sum += j.Occupancy.At(b, c)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("benchmark %d occupancy row sums to %v", b, sum)
		}
	}
}
