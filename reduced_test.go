package mica

import (
	"testing"
	"time"
)

// reducedBenchSet is the suite-spanning registry set the tracked
// `mica-bench -reduced` measurement and the acceptance assertions run
// over: branchy, pointer-chasing, FP, ALU-dense and streaming
// behaviour in one list.
var reducedBenchSet = []string{
	"SPEC2000/gzip/program",
	"SPEC2000/crafty/ref",
	"SPEC2000/mcf/ref",
	"MiBench/sha/large",
	"MiBench/FFT/fft-large",
	"MediaBench/mpeg2/encode",
}

// reducedAcceptanceConfig is the tracked configuration: a 2M-instruction
// trace on a 5000-instruction grid (400 intervals), BIC sweep to 10,
// with the documented defaults (key-characteristic cheap subset, 20%
// interval sampling, 3 measured intervals per phase).
func reducedAcceptanceConfig() ReducedConfig {
	return ReducedConfig{Phase: PhaseConfig{
		IntervalLen:  5_000,
		MaxIntervals: 400,
		MaxK:         10,
		Seed:         2006,
	}}
}

// TestReducedErrorBoundRegistry is the differential acceptance test:
// on every benchmark of the tracked set, the reduced extrapolation of
// ALL 47 characteristics and 13 HPC metrics must stay within 5%
// per-metric relative error of the exact matched-grid full profile.
func TestReducedErrorBoundRegistry(t *testing.T) {
	cfg := reducedAcceptanceConfig()
	for _, name := range reducedBenchSet {
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ProfileExact(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := AnalyzeReduced(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(rr.Phases.Intervals), len(ex.Intervals); got != want {
			t.Fatalf("%s: reduced grid has %d intervals, exact has %d", name, got, want)
		}
		for c, e := range rr.CharErrors(ex) {
			if e > 0.05 {
				t.Errorf("%s: characteristic %s extrapolates with %.2f%% relative error (>5%%)",
					name, CharName(c), e*100)
			}
		}
		for c, e := range rr.HPCErrors(ex) {
			if e > 0.05 {
				t.Errorf("%s: HPC metric %s extrapolates with %.2f%% relative error (>5%%)",
					name, HPCMetricName(c), e*100)
			}
		}
		// The reduction must be genuine: the replay may fully
		// characterize at most RepsPerPhase*K intervals.
		if maxMeasured := 3 * rr.Phases.K; len(rr.Measured) > maxMeasured {
			t.Errorf("%s: %d measured intervals for K=%d (max %d)", name, len(rr.Measured), rr.Phases.K, maxMeasured)
		}
	}
}

// TestReducedSpeedupRegistry is the cost acceptance test: across the
// tracked set, the two-pass reduced pipeline must be at least 2x
// faster end to end than exact full profiling at matched interval
// counts. The measured margin is ~3x, so the assertion tolerates
// loaded CI runners without going soft on the claim.
func TestReducedSpeedupRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock speedup measurement skipped in -short mode")
	}
	cfg := reducedAcceptanceConfig()
	var fullTime, redTime time.Duration
	for _, name := range reducedBenchSet {
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := ProfileExact(b, cfg); err != nil {
			t.Fatal(err)
		}
		fullTime += time.Since(start)
		start = time.Now()
		if _, err := AnalyzeReduced(b, cfg); err != nil {
			t.Fatal(err)
		}
		redTime += time.Since(start)
	}
	speedup := fullTime.Seconds() / redTime.Seconds()
	t.Logf("reduced profiling effective speedup: %.2fx (full %v, reduced %v)", speedup, fullTime, redTime)
	if speedup < 2 {
		t.Errorf("effective speedup %.2fx is below the 2x acceptance bound", speedup)
	}
}

// TestReducedRegistryScaleSmoke runs the sharded reduced pipeline over
// a 24-benchmark slice of the registry: every result must carry a
// clustered vocabulary, a bounded measurement plan, consistent cost
// accounting and non-trivial extrapolations.
func TestReducedRegistryScaleSmoke(t *testing.T) {
	all := Benchmarks()
	if len(all) < 24 {
		t.Fatalf("registry has only %d benchmarks", len(all))
	}
	bs := all[:24]
	cfg := ReducedPipelineConfig{
		Reduced: ReducedConfig{Phase: PhaseConfig{IntervalLen: 1_000, MaxIntervals: 20, MaxK: 4, Seed: 2006}},
	}
	results, err := AnalyzeReducedBenchmarks(bs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(bs) {
		t.Fatalf("got %d results for %d benchmarks", len(results), len(bs))
	}
	for i, r := range results {
		res := r.Result
		if r.Benchmark.Name() != bs[i].Name() {
			t.Errorf("result %d is %s, want %s (input order)", i, r.Benchmark.Name(), bs[i].Name())
		}
		if res.Phases.K < 1 || len(res.Measured) == 0 {
			t.Errorf("%s: K=%d with %d measured intervals", bs[i].Name(), res.Phases.K, len(res.Measured))
		}
		if res.MeasuredInsts+res.SkippedInsts != res.TotalInsts() {
			t.Errorf("%s: measured %d + skipped %d != total %d",
				bs[i].Name(), res.MeasuredInsts, res.SkippedInsts, res.TotalInsts())
		}
		if !res.HasHPC {
			t.Errorf("%s: HPC missing from default pipeline", bs[i].Name())
		}
		sum := 0.0
		for _, v := range res.Chars {
			sum += v
		}
		if sum == 0 {
			t.Errorf("%s: extrapolated characteristic vector is all zero", bs[i].Name())
		}
	}
	// The pipeline must be deterministic across worker counts: one
	// worker and many workers give bit-identical extrapolations.
	serial, err := AnalyzeReducedBenchmarks(bs[:4], ReducedPipelineConfig{Reduced: cfg.Reduced, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AnalyzeReducedBenchmarks(bs[:4], ReducedPipelineConfig{Reduced: cfg.Reduced, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Result.Chars != parallel[i].Result.Chars {
			t.Errorf("%s: worker count changes the extrapolation", serial[i].Benchmark.Name())
		}
	}
}

// TestProfileReducedFeedsAnalysisStack: ProfileReduced must produce
// ProfileResults the whole analysis stack accepts — the reduced
// pipeline is a drop-in cheap front end for NewSpace/Analyze.
func TestProfileReducedFeedsAnalysisStack(t *testing.T) {
	cfg := ReducedConfig{Phase: PhaseConfig{IntervalLen: 1_000, MaxIntervals: 20, MaxK: 4, Seed: 2006}}
	var results []ProfileResult
	for _, name := range []string{"MiBench/sha/large", "SPEC2000/gzip/program", "CommBench/drr/drr"} {
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ProfileReduced(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Insts == 0 {
			t.Fatalf("%s: reduced profile covers zero instructions", name)
		}
		results = append(results, pr)
	}
	s := NewSpace(results)
	if s.Len() != 3 {
		t.Fatalf("space has %d benchmarks", s.Len())
	}
	if rho := s.DistanceCorrelation(); rho < -1 || rho > 1 {
		t.Errorf("distance correlation %g out of range", rho)
	}
}
