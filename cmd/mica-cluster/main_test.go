package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mica"
)

func smallResults(t *testing.T) string {
	t.Helper()
	var bs []mica.Benchmark
	for i, b := range mica.Benchmarks() {
		if i%8 == 0 {
			bs = append(bs, b)
		}
	}
	cfg := mica.DefaultConfig()
	cfg.InstBudget = 5_000
	res, err := mica.ProfileBenchmarks(bs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	if err := mica.SaveResults(path, cfg.InstBudget, res); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureRun(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestClusterFromCache(t *testing.T) {
	cache := smallResults(t)
	out, err := captureRun(t, func() error {
		return run(5_000, cache, 10, 1, false, "", false, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BIC-selected K =") || !strings.Contains(out, "cluster 1") {
		t.Errorf("cluster output wrong:\n%s", out)
	}
}

func TestClusterKiviatASCII(t *testing.T) {
	cache := smallResults(t)
	out, err := captureRun(t, func() error {
		return run(5_000, cache, 6, 1, true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("kiviat markers missing")
	}
}

func TestClusterSVGOutput(t *testing.T) {
	cache := smallResults(t)
	dir := filepath.Join(t.TempDir(), "svg")
	if _, err := captureRun(t, func() error {
		return run(5_000, cache, 6, 1, false, dir, false, false)
	}); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no SVG files written")
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("not an SVG file")
	}
}

func TestClusterAllCharsRejectsSVG(t *testing.T) {
	cache := smallResults(t)
	if _, err := captureRun(t, func() error {
		return run(5_000, cache, 6, 1, false, t.TempDir(), true, false)
	}); err == nil {
		t.Error("-svg with -all-chars accepted")
	}
}

func TestClusterAllCharsSpace(t *testing.T) {
	cache := smallResults(t)
	out, err := captureRun(t, func() error {
		return run(5_000, cache, 6, 1, false, "", true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "all 47 characteristics") {
		t.Error("all-chars mode label missing")
	}
}
