// Command mica-cluster groups the benchmarks into similarly behaving
// clusters (Figure 6): k-means with BIC-selected K over the GA-selected
// key characteristics, printed as cluster listings and optional kiviat
// diagrams (ASCII to stdout, SVG files with -svg).
//
// Usage:
//
//	mica-cluster -results cache.json -kiviat
//	mica-cluster -svg plots/ -maxk 40
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mica"
	"mica/internal/obs"
)

func main() {
	var (
		budget  = flag.Uint64("budget", 300_000, "dynamic instruction budget per benchmark")
		results = flag.String("results", "", "JSON results cache")
		maxK    = flag.Int("maxk", 70, "maximum K for the BIC sweep")
		seed    = flag.Int64("seed", 2006, "GA and k-means seed")
		kiviat  = flag.Bool("kiviat", false, "print ASCII kiviat diagrams per benchmark")
		svgDir  = flag.String("svg", "", "write one SVG kiviat per benchmark into this directory")
		useAll  = flag.Bool("all-chars", false, "cluster in the full 47-D space instead of the GA key space")
		hier    = flag.Bool("hier", false, "also print a complete-linkage hierarchical clustering cut at the same K")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Build())
		return
	}
	if err := run(*budget, *results, *maxK, *seed, *kiviat, *svgDir, *useAll, *hier); err != nil {
		fmt.Fprintln(os.Stderr, "mica-cluster:", err)
		os.Exit(1)
	}
}

func run(budget uint64, resultsPath string, maxK int, seed int64, kiviat bool, svgDir string, useAll, hier bool) error {
	var res []mica.ProfileResult
	var err error
	if resultsPath != "" {
		res, _, err = mica.LoadResults(resultsPath)
	}
	if res == nil {
		cfg := mica.DefaultConfig()
		cfg.InstBudget = budget
		cfg.Progress = func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-60s", done, total, name)
		}
		res, err = mica.ProfileAll(cfg)
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	s := mica.NewSpace(res)
	var cols []int
	label := "all 47 characteristics"
	if !useAll {
		ga := s.GASelect(seed)
		cols = ga.Selected
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = mica.CharName(c)
		}
		label = fmt.Sprintf("%d GA-selected characteristics: %s",
			len(cols), strings.Join(names, ", "))
	}
	sel := s.Cluster(cols, maxK, seed)
	fmt.Printf("clustering space: %s\n", label)

	idxOf := map[string]int{}
	for i, n := range s.Names {
		idxOf[n] = i
	}
	// Report the populated group count: ClusterGroups drops cluster ids
	// k-means left unassigned, and the header must agree with the
	// groups printed below it.
	groups := s.ClusterGroups(sel)
	fmt.Printf("BIC-selected K = %d (max score %.1f), %d populated clusters\n\n",
		sel.Best.K, sel.MaxScore, len(groups))
	for gi, g := range groups {
		fmt.Printf("cluster %d (%d benchmarks):\n", gi+1, len(g))
		for _, name := range g {
			fmt.Printf("  %s\n", name)
		}
		if kiviat && cols != nil {
			for _, name := range g {
				d, err := s.Kiviat(idxOf[name], cols)
				if err != nil {
					return err
				}
				fmt.Println(d.ASCII(5))
			}
		}
	}

	if hier {
		dend := s.HierarchicalCluster(cols, mica.CompleteLinkage)
		assign := dend.Cut(sel.Best.K)
		hGroups := map[int][]string{}
		for i, c := range assign {
			hGroups[c] = append(hGroups[c], s.Names[i])
		}
		fmt.Printf("\ncomplete-linkage hierarchical clustering cut at K = %d:\n", sel.Best.K)
		for c := 0; c < sel.Best.K; c++ {
			if len(hGroups[c]) == 0 {
				continue
			}
			fmt.Printf("h-cluster %d (%d benchmarks):\n", c+1, len(hGroups[c]))
			for _, name := range hGroups[c] {
				fmt.Printf("  %s\n", name)
			}
		}
	}

	if svgDir != "" {
		if cols == nil {
			return fmt.Errorf("-svg requires the GA key space (drop -all-chars)")
		}
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		for i, name := range s.Names {
			d, err := s.Kiviat(i, cols)
			if err != nil {
				return err
			}
			fname := strings.NewReplacer("/", "_", ".", "_").Replace(name) + ".svg"
			if err := os.WriteFile(filepath.Join(svgDir, fname), []byte(d.SVG(320)), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d SVG kiviat diagrams to %s\n", len(s.Names), svgDir)
	}
	return nil
}
