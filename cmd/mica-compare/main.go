// Command mica-compare regenerates every table and figure of the paper's
// evaluation: Table I (registry), Table II (characteristics), Figure 1
// (distance scatter), Table III (tuple classification), Figures 2-3 (the
// bzip2-vs-blast pitfall), Figure 4 (ROC curves), Figure 5 (correlation
// vs subset size), Table IV (GA-selected characteristics) and Figure 6
// (clusters with kiviat diagrams).
//
// Usage:
//
//	mica-compare -out out/                  # profile everything, write all artifacts
//	mica-compare -results cache.json -out out/
//	mica-compare -exp fig4                  # print one experiment to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mica"
	"mica/internal/obs"
)

func main() {
	var (
		budget  = flag.Uint64("budget", 300_000, "dynamic instruction budget per benchmark")
		outDir  = flag.String("out", "", "directory for experiment artifacts (stdout when empty)")
		results = flag.String("results", "", "JSON results cache (loaded if present, written after profiling)")
		exp     = flag.String("exp", "all", "experiment: all|table1|table2|fig1|table3|fig2|fig3|fig4|fig5|table4|fig6|suites")
		kiviats = flag.Bool("kiviat", false, "include per-benchmark kiviat diagrams in fig6")
		seed    = flag.Int64("seed", 2006, "seed for the GA and k-means")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Build())
		return
	}
	if err := run(*budget, *outDir, *results, *exp, *kiviats, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mica-compare:", err)
		os.Exit(1)
	}
}

func run(budget uint64, outDir, resultsPath, exp string, kiviats bool, seed int64) error {
	results, err := obtainResults(budget, resultsPath)
	if err != nil {
		return err
	}
	acfg := mica.DefaultAnalysisConfig()
	acfg.GASeed = seed
	acfg.ClusterSeed = seed
	fmt.Fprintln(os.Stderr, "analyzing...")
	a := mica.Analyze(results, acfg)

	artifacts := map[string]func() string{
		"table1": func() string { return mica.RenderTableI(results) },
		"table2": func() string { return mica.RenderTableII(results) },
		"fig1":   a.RenderFigure1,
		"table3": a.RenderTableIII,
		"fig2":   a.RenderFigure2,
		"fig3":   a.RenderFigure3,
		"fig4":   a.RenderFigure4,
		"fig5":   a.RenderFigure5,
		"table4": a.RenderTableIV,
		"fig6":   func() string { return a.RenderFigure6(kiviats) },
		"suites": a.SuiteSimilarityReport,
	}
	order := []string{"table1", "table2", "fig1", "table3", "fig2", "fig3",
		"fig4", "fig5", "table4", "fig6", "suites"}

	emit := func(name, content string) error {
		if outDir == "" {
			fmt.Printf("==== %s ====\n%s\n", name, content)
			return nil
		}
		path := filepath.Join(outDir, name+".txt")
		return os.WriteFile(path, []byte(content), 0o644)
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	if exp == "all" {
		for _, name := range order {
			if err := emit(name, artifacts[name]()); err != nil {
				return err
			}
		}
		if outDir != "" {
			fmt.Printf("wrote %d artifacts to %s\n", len(order), outDir)
		}
		return nil
	}
	gen, ok := artifacts[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return emit(exp, gen())
}

// obtainResults loads cached profiling results or measures everything.
func obtainResults(budget uint64, path string) ([]mica.ProfileResult, error) {
	if path != "" {
		if results, cachedBudget, err := mica.LoadResults(path); err == nil {
			fmt.Fprintf(os.Stderr, "loaded %d results (budget %d) from %s\n",
				len(results), cachedBudget, path)
			return results, nil
		}
	}
	cfg := mica.DefaultConfig()
	cfg.InstBudget = budget
	cfg.Progress = func(done, total int, name string) {
		fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-60s", done, total, name)
	}
	results, err := mica.ProfileAll(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(os.Stderr)
	if path != "" {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		if err := mica.SaveResults(path, budget, results); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "cached results to %s\n", path)
	}
	return results, nil
}
