package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mica"
)

// smallResults profiles a compact benchmark subset (including the
// Figure 2/3 pitfall pair) and caches it to a JSON file the command can
// consume.
func smallResults(t *testing.T) string {
	t.Helper()
	names := []string{
		"SPEC2000/bzip2/graphic",
		"BioInfoMark/blast/protein",
		"MiBench/sha/large",
		"SPEC2000/mcf/ref",
		"MediaBench/epic/test1",
		"CommBench/tcp/tcp",
	}
	var bs []mica.Benchmark
	for _, n := range names {
		b, err := mica.BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	cfg := mica.DefaultConfig()
	cfg.InstBudget = 5_000
	res, err := mica.ProfileBenchmarks(bs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	if err := mica.SaveResults(path, cfg.InstBudget, res); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllExperimentsToDir(t *testing.T) {
	cache := smallResults(t)
	out := t.TempDir()
	if err := run(5_000, out, cache, "all", false, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1", "table2", "fig1", "table3", "fig2",
		"fig3", "fig4", "fig5", "table4", "fig6", "suites"} {
		data, err := os.ReadFile(filepath.Join(out, name+".txt"))
		if err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
			continue
		}
		if len(data) < 30 {
			t.Errorf("artifact %s nearly empty", name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	cache := smallResults(t)
	out := t.TempDir()
	if err := run(5_000, out, cache, "table3", false, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "table3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "false negative") {
		t.Error("table3 content wrong")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	cache := smallResults(t)
	if err := run(5_000, t.TempDir(), cache, "fig99", false, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestObtainResultsCachesToNewDir(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles all 122 benchmarks")
	}
	path := filepath.Join(t.TempDir(), "deep", "cache.json")
	res, err := obtainResults(2_000, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 122 {
		t.Fatalf("got %d results", len(res))
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("cache not written: %v", err)
	}
	// Second call loads from cache.
	res2, err := obtainResults(2_000, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 122 {
		t.Error("cache load wrong")
	}
}
