// Command mica-profile measures the microarchitecture-independent
// characteristics (Table II) and machine-model performance counters of
// one benchmark, or of every benchmark in the registry.
//
// Usage:
//
//	mica-profile -list
//	mica-profile -bench SPEC2000/mcf/ref [-budget 300000]
//	mica-profile -all -json results.json
//	mica-profile -bench SPEC2000/mcf/ref -record mcf.trc
//	mica-profile -trace mcf.trc
//
// -record runs the benchmark's embedded VM while writing its dynamic
// instruction stream to a durable trace file; -trace profiles a
// recorded file instead of an embedded benchmark, producing the
// bit-identical characterization.
package main

import (
	"flag"
	"fmt"
	"os"

	"mica"
	"mica/internal/obs"
	"mica/internal/report"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to profile (suite/program/input)")
		all       = flag.Bool("all", false, "profile all 122 benchmarks")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		budget    = flag.Uint64("budget", 300_000, "dynamic instruction budget per benchmark")
		jsonOut   = flag.String("json", "", "write results to a JSON file")
		record    = flag.String("record", "", "record -bench's instruction stream to this trace file instead of profiling")
		tracePath = flag.String("trace", "", "profile a recorded trace file instead of an embedded benchmark")
		statsOut  = flag.String("stats", "", "after the run, dump the observability registry as JSON to this file (\"-\" = stdout)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Build())
		return
	}
	err := run(*benchName, *all, *list, *budget, *jsonOut, *record, *tracePath)
	if *statsOut != "" {
		if serr := obs.DumpStats(*statsOut); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mica-profile:", err)
		os.Exit(1)
	}
}

func run(benchName string, all, list bool, budget uint64, jsonOut, record, tracePath string) error {
	if list {
		t := report.NewTable("name", "kernel", "paper I-cnt (M)")
		for _, b := range mica.Benchmarks() {
			t.AddRow(b.Name(), b.Kernel, b.PaperICountM)
		}
		fmt.Print(t.String())
		return nil
	}

	cfg := mica.DefaultConfig()
	cfg.InstBudget = budget

	if record != "" && tracePath != "" {
		return fmt.Errorf("-record and -trace are mutually exclusive")
	}
	if record != "" {
		if all || benchName == "" {
			return fmt.Errorf("-record needs exactly one -bench <name>")
		}
		b, err := mica.BenchmarkByName(benchName)
		if err != nil {
			return err
		}
		n, err := mica.RecordTrace(b, record, budget)
		if err != nil {
			return err
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", n, b.Name(), record)
		return nil
	}
	if tracePath != "" {
		if all {
			return fmt.Errorf("-trace and -all are mutually exclusive")
		}
		b := mica.TraceBenchmark(benchName, tracePath)
		res, err := mica.Profile(b, cfg)
		if err != nil {
			return err
		}
		printProfile(b, res)
		return nil
	}

	switch {
	case all:
		cfg.Progress = func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-60s", done, total, name)
		}
		results, err := mica.ProfileAll(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
		if jsonOut != "" {
			if err := mica.SaveResults(jsonOut, budget, results); err != nil {
				return err
			}
			fmt.Printf("wrote %d results to %s\n", len(results), jsonOut)
			return nil
		}
		fmt.Print(mica.RenderTableII(results))
		return nil

	case benchName != "":
		b, err := mica.BenchmarkByName(benchName)
		if err != nil {
			return err
		}
		res, err := mica.Profile(b, cfg)
		if err != nil {
			return err
		}
		printProfile(b, res)
		return nil

	default:
		return fmt.Errorf("pass -bench <name>, -all, -list or -trace <file>")
	}
}

// printProfile renders one benchmark's characterization tables.
func printProfile(b mica.Benchmark, res mica.ProfileResult) {
	source := "kernel " + b.Kernel
	if b.TracePath != "" {
		source = "trace " + b.TracePath
	}
	fmt.Printf("%s (%s, %d instructions)\n\n", b.Name(), source, res.Insts)
	t := report.NewTable("#", "category", "characteristic", "value")
	for c := 0; c < mica.NumChars; c++ {
		t.AddRow(c+1, mica.CharCategory(c), mica.CharName(c), res.Chars[c])
	}
	fmt.Print(t.String())
	fmt.Println()
	h := report.NewTable("HPC metric", "value")
	for c := 0; c < mica.NumHPCMetrics; c++ {
		h.AddRow(mica.HPCMetricName(c), res.HPC[c])
	}
	fmt.Print(h.String())
}
