package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects stdout during f and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run("", false, true, 1000, "", "", "") })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SPEC2000/mcf/ref") {
		t.Error("list output missing mcf")
	}
	if strings.Count(out, "\n") < 122 {
		t.Errorf("list too short: %d lines", strings.Count(out, "\n"))
	}
}

func TestRunSingleBenchmark(t *testing.T) {
	out, err := capture(t, func() error {
		return run("MiBench/sha/large", false, false, 5_000, "", "", "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pct_loads", "ppm_pas", "ipc_ev56", "5000 instructions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := capture(t, func() error { return run("nope", false, false, 1000, "", "", "") }); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunNoModeIsError(t *testing.T) {
	if _, err := capture(t, func() error { return run("", false, false, 1000, "", "", "") }); err == nil {
		t.Error("missing mode accepted")
	}
}

func TestRunAllToJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles all 122 benchmarks")
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if _, err := capture(t, func() error { return run("", true, false, 2_000, path, "", "") }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "BioInfoMark/blast/protein") {
		t.Error("JSON missing benchmarks")
	}
}

// TestRecordReplayRoundTrip: -record writes a trace whose -trace
// replay renders the identical characterization tables the live
// benchmark does.
func TestRecordReplayRoundTrip(t *testing.T) {
	trc := filepath.Join(t.TempDir(), "sha.trc")
	rec, err := capture(t, func() error {
		return run("MiBench/sha/large", false, false, 5_000, "", trc, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec, "recorded 5000 instructions") {
		t.Fatalf("record output %q missing instruction count", rec)
	}
	live, err := capture(t, func() error {
		return run("MiBench/sha/large", false, false, 5_000, "", "", "")
	})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := capture(t, func() error {
		return run("", false, false, 5_000, "", "", trc)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The header line names the source (kernel vs trace file); every
	// number below it must match exactly.
	liveBody := live[strings.Index(live, "\n"):]
	replayBody := replay[strings.Index(replay, "\n"):]
	if replayBody != liveBody {
		t.Error("trace replay tables diverge from the live benchmark")
	}
	if !strings.Contains(replay, "trace "+trc) {
		t.Errorf("replay header %q does not name the trace file", strings.SplitN(replay, "\n", 2)[0])
	}
}

// TestRecordTraceFlagValidation: the record/trace flag combinations
// that cannot work are rejected up front.
func TestRecordTraceFlagValidation(t *testing.T) {
	cases := []struct {
		name          string
		bench         string
		all           bool
		record, trace string
	}{
		{"record and trace", "MiBench/sha/large", false, "a.trc", "b.trc"},
		{"record without bench", "", false, "a.trc", ""},
		{"record with all", "MiBench/sha/large", true, "a.trc", ""},
		{"trace with all", "", true, "", "a.trc"},
	}
	for _, tc := range cases {
		if _, err := capture(t, func() error {
			return run(tc.bench, tc.all, false, 1000, "", tc.record, tc.trace)
		}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
