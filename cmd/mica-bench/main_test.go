package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesHistory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(context.Background(), 2000, 1, "MiBench/sha/large", out, "first", false, 1000); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 2000, 1, "MiBench/sha/large", out, "second", false, 1000); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 2 {
		t.Fatalf("history has %d entries, want 2", len(hist.History))
	}
	if hist.History[0].Label != "first" || hist.History[1].Label != "second" {
		t.Fatalf("labels = %q, %q", hist.History[0].Label, hist.History[1].Label)
	}
	for _, res := range hist.History {
		if len(res.Configs) != 3 {
			t.Fatalf("%s: %d configs, want 3", res.Label, len(res.Configs))
		}
		for _, c := range res.Configs {
			if c.MIPS <= 0 {
				t.Errorf("%s/%s: MIPS = %v", res.Label, c.Name, c.MIPS)
			}
		}
	}
}

func TestRunPhasesWritesHistory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "phases.json")
	if err := run(context.Background(), 10_000, 1, "MiBench/sha/large", out, "phase-smoke", true, 500); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 1 {
		t.Fatalf("history has %d entries, want 1", len(hist.History))
	}
	res := hist.History[0]
	if len(res.Configs) != 2 {
		t.Fatalf("%d configs, want phases-naive + phases-pooled", len(res.Configs))
	}
	for i, want := range []string{"phases-naive", "phases-pooled"} {
		if res.Configs[i].Name != want {
			t.Errorf("config %d is %q, want %q", i, res.Configs[i].Name, want)
		}
		if res.Configs[i].MIPS <= 0 {
			t.Errorf("%s: MIPS = %v", want, res.Configs[i].MIPS)
		}
	}
}

func TestRunPhasesRejectsBadInterval(t *testing.T) {
	if err := run(context.Background(), 1000, 1, "MiBench/sha/large", "", "x", true, 0); err == nil {
		t.Fatal("interval 0 accepted")
	}
	if err := run(context.Background(), 1000, 1, "MiBench/sha/large", "", "x", true, 2000); err == nil {
		t.Fatal("interval beyond budget accepted")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run(context.Background(), 1000, 1, "no/such/bench", "", "x", false, 1000); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

// TestRunClusterWritesHistory smoke-tests the -cluster mode at a small
// matrix size: both sweep configs recorded, with the minibatch config
// carrying its speedup and SSE-excess annotations.
func TestRunClusterWritesHistory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cluster.json")
	if err := runCluster(context.Background(), 9000, 4, 1, out, "cluster-smoke", 2006); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 1 {
		t.Fatalf("history has %d entries, want 1", len(hist.History))
	}
	res := hist.History[0]
	if res.Rows != 9000 || res.MaxK != 4 {
		t.Errorf("recorded rows/maxk = %d/%d", res.Rows, res.MaxK)
	}
	if len(res.Configs) != 2 {
		t.Fatalf("%d configs, want selectk-naive + selectk-parallel-minibatch", len(res.Configs))
	}
	for i, want := range []string{"selectk-naive", "selectk-parallel-minibatch"} {
		if res.Configs[i].Name != want {
			t.Errorf("config %d is %q, want %q", i, res.Configs[i].Name, want)
		}
		if res.Configs[i].MIPS <= 0 {
			t.Errorf("%s: throughput = %v", want, res.Configs[i].MIPS)
		}
		if res.Configs[i].PerBench["selected_k"] < 1 {
			t.Errorf("%s: selected_k missing", want)
		}
	}
	mini := res.Configs[1].PerBench
	if _, ok := mini["speedup_vs_naive"]; !ok {
		t.Error("minibatch config missing speedup_vs_naive")
	}
	if _, ok := mini["sse_excess_max"]; !ok {
		t.Error("minibatch config missing sse_excess_max")
	}
}

func TestRunClusterRejectsBadShape(t *testing.T) {
	if err := runCluster(context.Background(), 0, 4, 1, "", "x", 1); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if err := runCluster(context.Background(), 100, 0, 1, "", "x", 1); err == nil {
		t.Fatal("maxk=0 accepted")
	}
}

func TestRunReducedWritesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := runReduced(context.Background(), 40_000, 2_000, 4, 1, "MiBench/sha/large", path, "test", 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 1 {
		t.Fatalf("history has %d entries, want 1", len(hist.History))
	}
	rec := hist.History[0]
	if len(rec.Configs) != 3 ||
		rec.Configs[0].Name != "phases-full-grid" ||
		rec.Configs[1].Name != "phases-reduced" ||
		rec.Configs[2].Name != "phases-reduced-store" {
		t.Fatalf("configs = %+v", rec.Configs)
	}
	for _, red := range rec.Configs[1:] {
		if red.PerBench["speedup_vs_full"] <= 0 {
			t.Errorf("%s entry missing speedup_vs_full", red.Name)
		}
		if _, ok := red.PerBench["max_rel_err"]; !ok {
			t.Errorf("%s entry missing max_rel_err", red.Name)
		}
	}
	stored := rec.Configs[2]
	if stored.Metrics["mica_ivstore_cache_decodes_total"] <= 0 {
		t.Error("store entry metrics missing cache decodes")
	}
	if stored.Metrics["mica_ivstore_cache_peak_bytes"] <= 0 {
		t.Error("store entry metrics missing cache peak bytes")
	}
	if stored.Metrics[`mica_stage_duration_seconds{stage="phases.replay"}:count`] <= 0 {
		t.Error("store entry metrics missing replay stage durations")
	}
	if rec.Interval != 2_000 || rec.MaxK != 4 {
		t.Errorf("recorded interval/maxk = %d/%d", rec.Interval, rec.MaxK)
	}
}

func TestRunReducedRejectsBadInterval(t *testing.T) {
	if err := runReduced(context.Background(), 1_000, 50_000, 4, 1, "MiBench/sha/large", "", "test", 1); err == nil {
		t.Fatal("interval > budget must be rejected")
	}
}

func TestRunJointWritesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := runJoint(context.Background(), 8_000, 1_000, 3, 1, "MiBench/sha/large,CommBench/drr/drr", path, "test", 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 1 {
		t.Fatalf("history has %d entries, want 1", len(hist.History))
	}
	rec := hist.History[0]
	if len(rec.Configs) != 3 ||
		rec.Configs[0].Name != "joint-inmemory" ||
		rec.Configs[1].Name != "joint-store" ||
		rec.Configs[2].Name != "joint-store-quant8" {
		t.Fatalf("configs = %+v", rec.Configs)
	}
	store := rec.Configs[1]
	if store.PerBench["store_bytes"] <= 0 {
		t.Error("store entry missing store_bytes")
	}
	if _, ok := store.PerBench["vocab_identical"]; !ok {
		t.Error("store entry missing vocab_identical")
	}
	if store.PerBench["vocab_identical"] != 1 {
		t.Error("float32 store vocabulary diverged from in-memory on the smoke set")
	}
	if store.PerBench["rows"] != rec.Configs[0].PerBench["rows"] {
		t.Error("store and in-memory row counts differ")
	}
	if store.Metrics["mica_ivstore_cache_decodes_total"] <= 0 {
		t.Error("store entry metrics missing cache decodes")
	}
	if store.Metrics["mica_ivstore_cache_peak_bytes"] <= 0 {
		t.Error("store entry metrics missing cache peak bytes")
	}
}

// TestRunServeWritesHistory smoke-tests the -serve mode over a small
// store: the recorded entry carries similarity QPS with server-side
// tail latency.
func TestRunServeWritesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	benches := "MiBench/sha/large,SPEC2000/gzip/program,MiBench/FFT/fft-large"
	if err := runServe(context.Background(), 4_000, 500, 3, 1, benches, path, "test", 1, 4, 8); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 1 {
		t.Fatalf("history has %d entries, want 1", len(hist.History))
	}
	rec := hist.History[0]
	if len(rec.Configs) != 1 || rec.Configs[0].Name != "serve-similarity" {
		t.Fatalf("configs = %+v", rec.Configs)
	}
	c := rec.Configs[0]
	if c.Unit != "queries/s" {
		t.Errorf("unit = %q, want queries/s", c.Unit)
	}
	if c.MIPS <= 0 {
		t.Errorf("similarity throughput = %v", c.MIPS)
	}
	if c.PerBench["queries"] != 4*8 {
		t.Errorf("recorded %v queries, want 32", c.PerBench["queries"])
	}
	for _, key := range []string{"p50_ms", "p99_ms", "seconds", "build_seconds"} {
		if _, ok := c.PerBench[key]; !ok {
			t.Errorf("serve entry missing %s", key)
		}
	}
}

func TestRunServeRejectsBadLoad(t *testing.T) {
	if err := runServe(context.Background(), 4_000, 500, 3, 1, "MiBench/sha/large", "", "x", 1, 0, 8); err == nil {
		t.Fatal("clients=0 accepted")
	}
	if err := runServe(context.Background(), 1_000, 50_000, 3, 1, "MiBench/sha/large", "", "x", 1, 4, 8); err == nil {
		t.Fatal("interval > budget accepted")
	}
}

func TestRunJointRejectsBadInterval(t *testing.T) {
	if err := runJoint(context.Background(), 1_000, 50_000, 3, 1, "MiBench/sha/large", "", "test", 1); err == nil {
		t.Fatal("interval > budget must be rejected")
	}
}

func TestRunTraceRecordWritesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := runTrace(context.Background(), 20_000, 1, "MiBench/sha/large", path, "test", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 1 {
		t.Fatalf("history has %d entries, want 1", len(hist.History))
	}
	rec := hist.History[0]
	if len(rec.Configs) != 2 ||
		rec.Configs[0].Name != "live-vm-raw" ||
		rec.Configs[1].Name != "record-trace" {
		t.Fatalf("configs = %+v", rec.Configs)
	}
	recCfg := rec.Configs[1]
	if recCfg.PerBench["overhead_vs_raw"] <= 0 {
		t.Error("record entry missing overhead_vs_raw")
	}
	if recCfg.PerBench["bytes_per_inst"] <= 0 {
		t.Error("record entry missing bytes_per_inst")
	}
}

func TestRunTraceReplayWritesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := runTrace(context.Background(), 20_000, 1, "MiBench/sha/large", path, "test", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist History
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	rec := hist.History[0]
	if len(rec.Configs) != 4 ||
		rec.Configs[0].Name != "live-vm-raw" ||
		rec.Configs[1].Name != "live-vm-mica" ||
		rec.Configs[2].Name != "replay-raw" ||
		rec.Configs[3].Name != "replay-mica" {
		t.Fatalf("configs = %+v", rec.Configs)
	}
	for _, c := range rec.Configs[2:] {
		if c.PerBench["speedup_vs_live_mica"] <= 0 {
			t.Errorf("%s entry missing speedup_vs_live_mica", c.Name)
		}
	}
}

func TestRunTraceUnknownBenchmark(t *testing.T) {
	if err := runTrace(context.Background(), 1_000, 1, "nope/nope/nope", "", "x", true); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
