// Command mica-bench measures end-to-end profiling throughput (MIPS,
// millions of dynamic instructions per second) for three pipeline
// configurations over a representative benchmark set:
//
//	raw-vm    bare interpretation, no observers
//	mica      the 47-characteristic MICA profiler attached
//	mica+hpc  MICA plus the EV56/EV67 machine-model HPC profilers
//
// With -phases it instead measures the phase-analysis pipeline
// (interval-profiled MIPS, budget/interval intervals per benchmark) in
// two configurations measured in the same run:
//
//	phases-naive   a fresh profiler allocated per interval (the
//	               pre-streaming reference path)
//	phases-pooled  one profiler pooled across all intervals and
//	               benchmarks, Reset between intervals
//
// It is the repo's tracked performance harness: every PR that touches the
// hot path re-runs it and commits the result, so the perf trajectory of
// the reproduction is measured rather than assumed.
//
// Usage:
//
//	mica-bench [-budget 2000000] [-runs 3] [-bench name,name,...] [-json BENCH_profile.json]
//	mica-bench -phases [-interval 1000] [-json BENCH_phases.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mica"
	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/report"
	"mica/internal/vm"
)

// defaultSet spans the suites and kernel families so the harness sees
// branchy, pointer-chasing, FP and streaming behaviour in one run.
var defaultSet = []string{
	"SPEC2000/gzip/program",   // lz77: hash chains, mixed loads/stores
	"SPEC2000/crafty/ref",     // interp: branchy, hard to predict
	"SPEC2000/mcf/ref",        // pointerchase: large data working set
	"MiBench/sha/large",       // sha: ALU-dense, tight loops
	"MiBench/FFT/fft-large",   // fft: floating point
	"MediaBench/mpeg2/encode", // motionest: 2D locality
}

// History is the JSON document written by -json: one entry per recorded
// run, so the committed BENCH_profile.json accumulates the repo's perf
// trajectory PR over PR.
type History struct {
	History []Result `json:"history"`
}

// Result is one recorded measurement.
type Result struct {
	// Label names the measurement ("seed-baseline", "pr1", ...).
	Label string `json:"label"`
	// Timestamp is when the measurement ran (RFC 3339).
	Timestamp string `json:"timestamp"`
	// GoVersion and GOMAXPROCS describe the environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Budget is the dynamic instruction budget per benchmark per run.
	Budget uint64 `json:"budget"`
	// Interval is the phase interval length in instructions; present
	// only for -phases measurements.
	Interval uint64 `json:"interval,omitempty"`
	// Runs is the number of repetitions; the best run is reported.
	Runs int `json:"runs"`
	// Benchmarks lists the measured benchmark names.
	Benchmarks []string `json:"benchmarks"`
	// Configs holds per-configuration aggregate throughput.
	Configs []ConfigResult `json:"configs"`
}

// ConfigResult is one pipeline configuration's throughput.
type ConfigResult struct {
	Name string `json:"name"`
	// MIPS is the aggregate throughput: total instructions across the
	// benchmark set divided by total wall time, in millions per second.
	MIPS float64 `json:"mips"`
	// PerBench is the per-benchmark MIPS breakdown.
	PerBench map[string]float64 `json:"per_bench"`
}

func main() {
	var (
		budget   = flag.Uint64("budget", 2_000_000, "dynamic instruction budget per benchmark")
		runs     = flag.Int("runs", 3, "repetitions per configuration (best run reported)")
		benches  = flag.String("bench", "", "comma-separated benchmark names (default: representative set)")
		jsonOut  = flag.String("json", "", "append results to a JSON history file")
		label    = flag.String("label", "dev", "label recorded with the measurement")
		phaseRun = flag.Bool("phases", false, "measure the phase-analysis pipeline (naive vs pooled) instead of the profiler configs")
		interval = flag.Uint64("interval", 1_000, "phase interval length in instructions (with -phases)")
	)
	flag.Parse()
	if err := run(*budget, *runs, *benches, *jsonOut, *label, *phaseRun, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "mica-bench:", err)
		os.Exit(1)
	}
}

func run(budget uint64, runs int, benches, jsonOut, label string, phaseRun bool, interval uint64) error {
	if runs < 1 {
		runs = 1
	}
	names := defaultSet
	if benches != "" {
		names = strings.Split(benches, ",")
	}
	set := make([]mica.Benchmark, 0, len(names))
	for _, n := range names {
		b, err := mica.BenchmarkByName(strings.TrimSpace(n))
		if err != nil {
			return err
		}
		set = append(set, b)
	}

	res := Result{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Budget:     budget,
		Runs:       runs,
		Benchmarks: names,
	}

	var configs []benchConfig
	if phaseRun {
		if interval == 0 || interval > budget {
			return fmt.Errorf("phase interval %d out of range for budget %d", interval, budget)
		}
		res.Interval = interval
		pcfg := phases.Config{
			IntervalLen:  interval,
			MaxIntervals: int(budget / interval),
			MaxK:         4,
			Seed:         2006,
		}
		// The pooled configuration shares ONE profiler across every
		// benchmark and repetition — exactly what an AnalyzePhasesAll
		// worker does over its shard.
		pooled := micachar.NewProfiler(pcfg.Options)
		configs = []benchConfig{
			{"phases-naive", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				m, err := b.Instantiate()
				if err != nil {
					return 0, 0, err
				}
				res, err := phases.AnalyzeUnpooled(m, pcfg)
				if err != nil {
					return 0, 0, err
				}
				return res.TotalInsts(), time.Since(start), nil
			}},
			{"phases-pooled", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				m, err := b.Instantiate()
				if err != nil {
					return 0, 0, err
				}
				res, err := phases.AnalyzeWith(m, pooled, pcfg)
				if err != nil {
					return 0, 0, err
				}
				return res.TotalInsts(), time.Since(start), nil
			}},
		}
	} else {
		configs = profilerConfigs(budget)
	}

	t := report.NewTable("config", "MIPS", "insts", "time")
	for _, c := range configs {
		best := ConfigResult{Name: c.name, PerBench: make(map[string]float64)}
		var bestInsts uint64
		var bestTime time.Duration
		for r := 0; r < runs; r++ {
			var totalInsts uint64
			var totalTime time.Duration
			perBench := make(map[string]float64)
			for i, b := range set {
				n, d, err := c.measure(b)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", c.name, names[i], err)
				}
				totalInsts += n
				totalTime += d
				perBench[names[i]] = mips(n, d)
			}
			if m := mips(totalInsts, totalTime); m > best.MIPS {
				best.MIPS = m
				best.PerBench = perBench
				bestInsts, bestTime = totalInsts, totalTime
			}
		}
		res.Configs = append(res.Configs, best)
		t.AddRow(c.name, fmt.Sprintf("%.2f", best.MIPS), bestInsts,
			bestTime.Round(time.Millisecond))
	}
	fmt.Print(t.String())

	if jsonOut != "" {
		var hist History
		prev, err := os.ReadFile(jsonOut)
		switch {
		case err == nil:
			if err := json.Unmarshal(prev, &hist); err != nil {
				return fmt.Errorf("existing %s is not a history file: %w", jsonOut, err)
			}
		case !os.IsNotExist(err):
			// Never clobber the tracked perf trajectory because of a
			// transient read failure.
			return err
		}
		hist.History = append(hist.History, res)
		data, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("appended %q to %s (%d entries)\n", label, jsonOut, len(hist.History))
	}
	return nil
}

// benchConfig is one measured pipeline configuration.
type benchConfig struct {
	name    string
	measure func(b mica.Benchmark) (uint64, time.Duration, error)
}

// profilerConfigs are the three tracked profiler pipeline
// configurations of BENCH_profile.json.
func profilerConfigs(budget uint64) []benchConfig {
	return []benchConfig{
		{"raw-vm", func(b mica.Benchmark) (uint64, time.Duration, error) {
			// Instantiate is inside the timed region, as it is for the
			// profiler configs (Profile instantiates internally), so
			// the three configurations compare apples-to-apples.
			start := time.Now()
			m, err := b.Instantiate()
			if err != nil {
				return 0, 0, err
			}
			n, err := m.Run(budget, nil)
			if err != nil && err != vm.ErrBudget {
				return 0, 0, err
			}
			return n, time.Since(start), nil
		}},
		{"mica", func(b mica.Benchmark) (uint64, time.Duration, error) {
			cfg := mica.DefaultConfig()
			cfg.InstBudget = budget
			cfg.SkipHPC = true
			start := time.Now()
			pr, err := mica.Profile(b, cfg)
			if err != nil {
				return 0, 0, err
			}
			return pr.Insts, time.Since(start), nil
		}},
		{"mica+hpc", func(b mica.Benchmark) (uint64, time.Duration, error) {
			cfg := mica.DefaultConfig()
			cfg.InstBudget = budget
			start := time.Now()
			pr, err := mica.Profile(b, cfg)
			if err != nil {
				return 0, 0, err
			}
			return pr.Insts, time.Since(start), nil
		}},
	}
}

func mips(insts uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(insts) / d.Seconds() / 1e6
}
