// Command mica-bench measures end-to-end profiling throughput (MIPS,
// millions of dynamic instructions per second) for three pipeline
// configurations over a representative benchmark set:
//
//	raw-vm    bare interpretation, no observers
//	mica      the 47-characteristic MICA profiler attached
//	mica+hpc  MICA plus the EV56/EV67 machine-model HPC profilers
//
// With -phases it instead measures the phase-analysis pipeline
// (interval-profiled MIPS, budget/interval intervals per benchmark) in
// two configurations measured in the same run:
//
//	phases-naive   a fresh profiler allocated per interval (the
//	               pre-streaming reference path)
//	phases-pooled  one profiler pooled across all intervals and
//	               benchmarks, Reset between intervals
//
// With -reduced it measures phase-aware reduced profiling against
// exact full profiling on the same interval grid, in two
// configurations measured in the same run:
//
//	phases-full-grid      the exact matched-grid profile: full 47-dim +
//	                      EV56/EV67 HPC characterization on EVERY
//	                      interval
//	phases-reduced        the two-pass reduced pipeline: sampled
//	                      key-characteristic cheap pass, clustering,
//	                      and full characterization only on per-phase
//	                      measured intervals
//	phases-reduced-store  the same reduced pipeline through the
//	                      interval-vector store: the cheap pass lands
//	                      in on-disk shards and the replay gathers
//	                      representatives back through the
//	                      decoded-shard cache
//
// The reduced configs also record their effective speedup over the
// full grid and the worst per-metric relative error of their
// extrapolated whole-run vectors, so the recorded speedup carries its
// quality bound with it; every config additionally records the
// observability registry's delta over its runs (cache accounting,
// pool counters, stage durations) in its metrics map.
//
// With -joint it measures registry-scale joint phase analysis — every
// selected benchmark's intervals clustered once into a shared
// vocabulary — in three configurations measured in the same run:
//
//	joint-inmemory     the flat-matrix path: all interval vectors
//	                   concatenated in memory (AnalyzePhasesJoint)
//	joint-store        the out-of-core path: float32 shards written to
//	                   an interval-vector store, clustering streams
//	                   rows shard-by-shard (AnalyzePhasesJointStore)
//	joint-store-quant8 the same with 8-bit quantized shards
//
// The store configs also record their store size on disk, the
// registry's cache accounting delta (decodes, peak decoded bytes —
// the clustering sweep streams the same rows many times, so the cache
// turns repeated decodes into hits) and whether the resulting
// vocabulary (K + assignment) is identical to the in-memory one, so
// the recorded throughput carries its fidelity with it. -joint
// defaults to the whole 122-benchmark registry.
//
// With -serve it measures the mica-serve serving layer: a store is
// built over the selected benchmarks, an in-process HTTP daemon
// (internal/serve) opens it, and -clients concurrent clients drive
// -queries similarity lookups each through real HTTP. The recorded
// configuration:
//
//	serve-similarity  aggregate similarity-query throughput in
//	                  queries/s, with server-side p50/p99 latency and
//	                  the client/query mix in the per-bench map
//
// With -cluster it measures the BIC k-sweep (cluster.SelectK) on a
// synthetic phase-interval matrix (-rows x 47, Gaussian blobs) in two
// configurations, reporting million row-assignments per second
// (rows x maxK / wall time):
//
//	selectk-naive               the serial exact Lloyd reference sweep
//	selectk-parallel-minibatch  the parallel sweep with the minibatch
//	                            engine and per-worker scratch reuse
//
// The minibatch config also records its worst-case SSE excess over the
// exact sweep across all swept k, so the recorded speedup carries its
// quality bound with it.
//
// It is the repo's tracked performance harness: every PR that touches the
// hot path re-runs it and commits the result, so the perf trajectory of
// the reproduction is measured rather than assumed.
//
// Usage:
//
//	mica-bench [-budget 2000000] [-runs 3] [-bench name,name,...] [-json BENCH_profile.json]
//	mica-bench -record [-budget 2000000] [-json BENCH_profile.json]
//	mica-bench -replay [-budget 2000000] [-json BENCH_profile.json]
//	mica-bench -phases [-interval 1000] [-json BENCH_phases.json]
//	mica-bench -cluster [-rows 100000] [-maxk 10] [-json BENCH_phases.json]
//	mica-bench -joint [-budget 400000] [-interval 400] [-maxk 3] [-json BENCH_phases.json]
//	mica-bench -serve [-clients 16] [-queries 32] [-json BENCH_phases.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strings"
	"sync"
	"syscall"
	"time"

	"mica"
	"mica/internal/cluster"
	micachar "mica/internal/mica"
	"mica/internal/obs"
	"mica/internal/phases"
	"path/filepath"

	"mica/internal/report"
	"mica/internal/serve"
	"mica/internal/vm"
)

// defaultSet spans the suites and kernel families so the harness sees
// branchy, pointer-chasing, FP and streaming behaviour in one run.
var defaultSet = []string{
	"SPEC2000/gzip/program",   // lz77: hash chains, mixed loads/stores
	"SPEC2000/crafty/ref",     // interp: branchy, hard to predict
	"SPEC2000/mcf/ref",        // pointerchase: large data working set
	"MiBench/sha/large",       // sha: ALU-dense, tight loops
	"MiBench/FFT/fft-large",   // fft: floating point
	"MediaBench/mpeg2/encode", // motionest: 2D locality
}

// History is the JSON document written by -json: one entry per recorded
// run, so the committed BENCH_profile.json accumulates the repo's perf
// trajectory PR over PR.
type History struct {
	History []Result `json:"history"`
}

// Result is one recorded measurement.
type Result struct {
	// Label names the measurement ("seed-baseline", "pr1", ...).
	Label string `json:"label"`
	// Timestamp is when the measurement ran (RFC 3339).
	Timestamp string `json:"timestamp"`
	// GoVersion and GOMAXPROCS describe the environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Budget is the dynamic instruction budget per benchmark per run;
	// absent for -cluster measurements, which run no instructions.
	Budget uint64 `json:"budget,omitempty"`
	// Interval is the phase interval length in instructions; present
	// only for -phases measurements.
	Interval uint64 `json:"interval,omitempty"`
	// Rows and MaxK describe the synthetic matrix and sweep width
	// (-cluster) or the BIC sweep width (-reduced).
	Rows int `json:"rows,omitempty"`
	MaxK int `json:"max_k,omitempty"`
	// Runs is the number of repetitions; the best run is reported.
	Runs int `json:"runs"`
	// Benchmarks lists the measured benchmark names.
	Benchmarks []string `json:"benchmarks"`
	// Configs holds per-configuration aggregate throughput.
	Configs []ConfigResult `json:"configs"`
}

// ConfigResult is one pipeline configuration's throughput.
type ConfigResult struct {
	Name string `json:"name"`
	// MIPS is the aggregate throughput: total instructions across the
	// benchmark set divided by total wall time, in millions per second.
	// For -cluster measurements the same field carries million
	// row-assignments per second, marked by Unit.
	MIPS float64 `json:"mips"`
	// Unit names the throughput unit when it is not plain MIPS
	// ("Mrows/s" for -cluster entries), so history readers never
	// compare incomparable quantities silently.
	Unit string `json:"unit,omitempty"`
	// PerBench is the per-benchmark MIPS breakdown.
	PerBench map[string]float64 `json:"per_bench"`
	// Metrics is the observability registry's delta over this
	// configuration's runs (flattened counters and histogram
	// counts/sums, mica_<layer>_<name> keys): cache decodes, pool
	// items, stage durations — whatever the run actually touched. It
	// replaces ad-hoc per-config fields, so new instrumentation lands
	// in the history without touching this harness.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// snapMetrics captures the observability registry's current state and
// returns a closure yielding the flattened delta since — the Metrics
// record a configuration carries into the history file.
func snapMetrics() func() map[string]float64 {
	base := obs.Default().Snapshot()
	return func() map[string]float64 { return obs.Delta(base, obs.Default().Snapshot()) }
}

func main() {
	var (
		budget     = flag.Uint64("budget", 2_000_000, "dynamic instruction budget per benchmark")
		runs       = flag.Int("runs", 3, "repetitions per configuration (best run reported)")
		benches    = flag.String("bench", "", "comma-separated benchmark names (default: representative set)")
		jsonOut    = flag.String("json", "", "append results to a JSON history file")
		label      = flag.String("label", "dev", "label recorded with the measurement")
		phaseRun   = flag.Bool("phases", false, "measure the phase-analysis pipeline (naive vs pooled) instead of the profiler configs")
		interval   = flag.Uint64("interval", 1_000, "phase interval length in instructions (with -phases or -reduced)")
		reducedRun = flag.Bool("reduced", false, "measure phase-aware reduced profiling vs exact full profiling on the same interval grid")
		jointRun   = flag.Bool("joint", false, "measure registry-scale joint phase analysis (in-memory vs store-backed vs quantized store)")
		serveRun   = flag.Bool("serve", false, "measure the serving layer's similarity-query throughput over a live HTTP daemon")
		clients    = flag.Int("clients", 16, "concurrent clients (with -serve)")
		queries    = flag.Int("queries", 32, "similarity queries per client (with -serve)")
		recordRun  = flag.Bool("record", false, "measure trace recording overhead (raw VM vs VM + trace writer)")
		replayRun  = flag.Bool("replay", false, "measure trace replay throughput (live VM and live characterization vs recorded-trace replay)")
		clusterRun = flag.Bool("cluster", false, "measure the SelectK BIC sweep (naive vs parallel-minibatch) instead of the profiler configs")
		rows       = flag.Int("rows", 100_000, "synthetic matrix rows (with -cluster)")
		maxK       = flag.Int("maxk", 10, "BIC sweep width (with -cluster or -reduced)")
		seed       = flag.Int64("seed", 2006, "synthetic data and k-means seed (with -cluster or -reduced)")
		statsOut   = flag.String("stats", "", "after the run, dump the observability registry as JSON to this file (\"-\" = stdout)")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Build())
		return
	}

	// SIGINT/SIGTERM cancels the measurement context: the current
	// pipeline drains and the harness exits without appending a
	// half-measured entry to the tracked history.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *recordRun || *replayRun:
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "phases", "reduced", "cluster", "joint", "serve", "rows":
				err = fmt.Errorf("-%s does not apply to -record/-replay (use -budget/-runs/-bench)", f.Name)
			}
		})
		if err == nil && *recordRun && *replayRun {
			err = fmt.Errorf("-record and -replay are separate measurements; pass one")
		}
		if err == nil {
			err = runTrace(ctx, *budget, *runs, *benches, *jsonOut, *label, *replayRun)
		}
	case *serveRun:
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "phases", "reduced", "cluster", "joint", "rows":
				err = fmt.Errorf("-%s does not apply to -serve (use -budget/-interval/-maxk/-seed/-bench/-clients/-queries)", f.Name)
			}
		})
		if err == nil {
			err = runServe(ctx, *budget, *interval, *maxK, *runs, *benches, *jsonOut, *label, *seed, *clients, *queries)
		}
	case *jointRun:
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "phases", "reduced", "cluster", "rows":
				err = fmt.Errorf("-%s does not apply to -joint (use -budget/-interval/-maxk/-seed/-bench)", f.Name)
			}
		})
		if err == nil {
			err = runJoint(ctx, *budget, *interval, *maxK, *runs, *benches, *jsonOut, *label, *seed)
		}
	case *clusterRun:
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "phases", "reduced", "bench", "budget", "interval":
				err = fmt.Errorf("-%s does not apply to -cluster (use -rows/-maxk/-seed)", f.Name)
			}
		})
		if err == nil {
			err = runCluster(ctx, *rows, *maxK, *runs, *jsonOut, *label, *seed)
		}
	case *reducedRun:
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "phases", "rows":
				err = fmt.Errorf("-%s does not apply to -reduced (use -budget/-interval/-maxk/-seed)", f.Name)
			}
		})
		if err == nil {
			err = runReduced(ctx, *budget, *interval, *maxK, *runs, *benches, *jsonOut, *label, *seed)
		}
	default:
		err = run(ctx, *budget, *runs, *benches, *jsonOut, *label, *phaseRun, *interval)
	}
	if *statsOut != "" {
		if serr := obs.DumpStats(*statsOut); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mica-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, budget uint64, runs int, benches, jsonOut, label string, phaseRun bool, interval uint64) error {
	if runs < 1 {
		runs = 1
	}
	names, set, err := resolveBenchmarks(benches)
	if err != nil {
		return err
	}

	res := Result{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Budget:     budget,
		Runs:       runs,
		Benchmarks: names,
	}

	var configs []benchConfig
	if phaseRun {
		if interval == 0 || interval > budget {
			return fmt.Errorf("phase interval %d out of range for budget %d", interval, budget)
		}
		res.Interval = interval
		pcfg := phases.Config{
			IntervalLen:  interval,
			MaxIntervals: int(budget / interval),
			MaxK:         4,
			Seed:         2006,
		}
		// The pooled configuration shares ONE profiler across every
		// benchmark and repetition — exactly what an AnalyzePhasesAll
		// worker does over its shard.
		pooled := micachar.NewProfiler(pcfg.Options)
		configs = []benchConfig{
			{"phases-naive", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				m, err := b.Instantiate()
				if err != nil {
					return 0, 0, err
				}
				res, err := phases.AnalyzeUnpooled(m, pcfg)
				if err != nil {
					return 0, 0, err
				}
				return res.TotalInsts(), time.Since(start), nil
			}},
			{"phases-pooled", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				m, err := b.Instantiate()
				if err != nil {
					return 0, 0, err
				}
				res, err := phases.AnalyzeWith(m, pooled, pcfg)
				if err != nil {
					return 0, 0, err
				}
				return res.TotalInsts(), time.Since(start), nil
			}},
		}
	} else {
		configs = profilerConfigs(budget)
	}

	t := report.NewTable("config", "MIPS", "insts", "time")
	for _, c := range configs {
		best := ConfigResult{Name: c.name, PerBench: make(map[string]float64)}
		var bestInsts uint64
		var bestTime time.Duration
		delta := snapMetrics()
		for r := 0; r < runs; r++ {
			var totalInsts uint64
			var totalTime time.Duration
			perBench := make(map[string]float64)
			for i, b := range set {
				// Measurement granularity is one benchmark: a signal stops
				// the harness at the next benchmark boundary, so no
				// half-measured entry reaches the tracked history.
				if err := ctx.Err(); err != nil {
					return err
				}
				n, d, err := c.measure(b)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", c.name, names[i], err)
				}
				totalInsts += n
				totalTime += d
				perBench[names[i]] = mips(n, d)
			}
			if m := mips(totalInsts, totalTime); m > best.MIPS {
				best.MIPS = m
				best.PerBench = perBench
				bestInsts, bestTime = totalInsts, totalTime
			}
		}
		best.Metrics = delta()
		res.Configs = append(res.Configs, best)
		t.AddRow(c.name, fmt.Sprintf("%.2f", best.MIPS), bestInsts,
			bestTime.Round(time.Millisecond))
	}
	fmt.Print(t.String())

	return appendHistory(jsonOut, res)
}

// appendHistory appends one measurement to the JSON history file (a
// no-op when no file is configured).
func appendHistory(jsonOut string, res Result) error {
	if jsonOut == "" {
		return nil
	}
	var hist History
	prev, err := os.ReadFile(jsonOut)
	switch {
	case err == nil:
		if err := json.Unmarshal(prev, &hist); err != nil {
			return fmt.Errorf("existing %s is not a history file: %w", jsonOut, err)
		}
	case !os.IsNotExist(err):
		// Never clobber the tracked perf trajectory because of a
		// transient read failure.
		return err
	}
	hist.History = append(hist.History, res)
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended %q to %s (%d entries)\n", res.Label, jsonOut, len(hist.History))
	return nil
}

// runCluster measures the SelectK BIC sweep: the serial exact
// reference (SelectKNaive) against the parallel minibatch sweep, on
// the same synthetic matrix with the same seed. Throughput is million
// row-assignments per second (rows x maxK / wall time).
func runCluster(ctx context.Context, rows, maxK, runs int, jsonOut, label string, seed int64) error {
	if runs < 1 {
		runs = 1
	}
	if rows < 1 || maxK < 1 {
		return fmt.Errorf("cluster sweep needs positive -rows and -maxk (got %d, %d)", rows, maxK)
	}
	// The fixture lives in internal/cluster (SyntheticPhaseBlobs) so the
	// tracked harness and BenchmarkClusterSweep measure the same recipe.
	const centers = 12
	m := cluster.SyntheticPhaseBlobs(rows, centers, seed)

	res := Result{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runs:       runs,
		Rows:       rows,
		MaxK:       maxK,
		Benchmarks: []string{fmt.Sprintf("synthetic-blobs-%dx47-c%d", rows, centers)},
	}

	measure := func(sweep func() cluster.Selection) (cluster.Selection, time.Duration, error) {
		var sel cluster.Selection
		best := time.Duration(0)
		for r := 0; r < runs; r++ {
			if err := ctx.Err(); err != nil {
				return sel, best, err
			}
			start := time.Now()
			s := sweep()
			if d := time.Since(start); best == 0 || d < best {
				best, sel = d, s
			}
		}
		return sel, best, nil
	}

	naiveSel, naiveT, err := measure(func() cluster.Selection {
		return cluster.SelectKNaive(m, maxK, 0.9, seed)
	})
	if err != nil {
		return err
	}
	miniSel, miniT, err := measure(func() cluster.Selection {
		return cluster.SelectKOpt(m, maxK, 0.9, seed, cluster.SweepOptions{Engine: cluster.EngineMiniBatch})
	})
	if err != nil {
		return err
	}

	// Worst-case minibatch SSE excess over exact Lloyd across the sweep
	// (k=1 SSE is seeding-independent, so the comparison starts there
	// too). An exact SSE of 0 (fully separable data) gets a tiny
	// denominator instead of being skipped: a minibatch regression at
	// that k then records as an enormous excess rather than as perfect
	// quality.
	sseExcess := 0.0
	for i := range naiveSel.SSEs {
		den := naiveSel.SSEs[i]
		if den <= 0 {
			den = 1e-12
		}
		if ex := miniSel.SSEs[i]/den - 1; ex > sseExcess {
			sseExcess = ex
		}
	}
	speedup := naiveT.Seconds() / miniT.Seconds()

	mrs := func(d time.Duration) float64 {
		return float64(rows) * float64(maxK) / d.Seconds() / 1e6
	}
	res.Configs = []ConfigResult{
		{Name: "selectk-naive", MIPS: mrs(naiveT), Unit: "Mrows/s", PerBench: map[string]float64{
			"seconds":    naiveT.Seconds(),
			"selected_k": float64(naiveSel.Best.K),
		}},
		{Name: "selectk-parallel-minibatch", MIPS: mrs(miniT), Unit: "Mrows/s", PerBench: map[string]float64{
			"seconds":          miniT.Seconds(),
			"selected_k":       float64(miniSel.Best.K),
			"speedup_vs_naive": speedup,
			"sse_excess_max":   sseExcess,
		}},
	}

	t := report.NewTable("config", "Mrows/s", "time", "K", "notes")
	t.AddRow("selectk-naive", fmt.Sprintf("%.2f", mrs(naiveT)),
		naiveT.Round(time.Millisecond), naiveSel.Best.K, "")
	t.AddRow("selectk-parallel-minibatch", fmt.Sprintf("%.2f", mrs(miniT)),
		miniT.Round(time.Millisecond), miniSel.Best.K,
		fmt.Sprintf("%.2fx faster, SSE +%.2f%% max", speedup, sseExcess*100))
	fmt.Print(t.String())

	return appendHistory(jsonOut, res)
}

// runReduced measures phase-aware reduced profiling: the exact
// matched-grid full characterization (every interval paying the full
// 47-dim + HPC models) against the two-pass reduced pipeline, on the
// same benchmarks, grid and seed. Both are reported as effective MIPS
// (trace instructions per second of wall time); the reduced entry also
// records its speedup and the worst per-metric relative error of its
// extrapolations — the tracked evidence that the speedup does not cost
// accuracy.
func runReduced(ctx context.Context, budget, interval uint64, maxK, runs int, benches, jsonOut, label string, seed int64) error {
	if runs < 1 {
		runs = 1
	}
	if interval == 0 || interval > budget {
		return fmt.Errorf("reduced interval %d out of range for budget %d", interval, budget)
	}
	names, set, err := resolveBenchmarks(benches)
	if err != nil {
		return err
	}
	cfg := mica.ReducedConfig{Phase: mica.PhaseConfig{
		IntervalLen:  interval,
		MaxIntervals: int(budget / interval),
		MaxK:         maxK,
		Seed:         seed,
	}}

	res := Result{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Budget:     budget,
		Interval:   interval,
		MaxK:       maxK,
		Runs:       runs,
		Benchmarks: names,
	}

	full := ConfigResult{Name: "phases-full-grid", PerBench: make(map[string]float64)}
	red := ConfigResult{Name: "phases-reduced", PerBench: make(map[string]float64)}
	var fullTime, redTime time.Duration
	var totalInsts uint64
	maxErr := 0.0
	exacts := make([]*phases.ExactProfile, len(set))
	for i, b := range set {
		var ex *phases.ExactProfile
		var rr *mica.ReducedResult
		var bestFull, bestRed time.Duration
		for r := 0; r < runs; r++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			start := time.Now()
			e, err := mica.ProfileExact(b, cfg)
			if err != nil {
				return fmt.Errorf("full grid on %s: %w", names[i], err)
			}
			if d := time.Since(start); bestFull == 0 || d < bestFull {
				bestFull, ex = d, e
			}
			start = time.Now()
			rd, err := mica.AnalyzeReduced(b, cfg)
			if err != nil {
				return fmt.Errorf("reduced on %s: %w", names[i], err)
			}
			if d := time.Since(start); bestRed == 0 || d < bestRed {
				bestRed, rr = d, rd
			}
		}
		insts := ex.TotalInsts()
		totalInsts += insts
		fullTime += bestFull
		redTime += bestRed
		full.PerBench[names[i]] = mips(insts, bestFull)
		red.PerBench[names[i]] = mips(insts, bestRed)
		if e := rr.MaxRelativeError(ex); e > maxErr {
			maxErr = e
		}
		exacts[i] = ex
	}
	full.MIPS = mips(totalInsts, fullTime)
	red.MIPS = mips(totalInsts, redTime)
	speedup := fullTime.Seconds() / redTime.Seconds()
	red.PerBench["speedup_vs_full"] = speedup
	red.PerBench["max_rel_err"] = maxErr
	res.Configs = []ConfigResult{full, red}

	// Store-backed reduced: the same pipeline with its cheap pass in a
	// fresh interval-vector store and the replay reading shards back
	// through the decoded-shard cache. The store APIs are set-level, so
	// this configuration is timed end to end over the whole set against
	// the summed full-grid reference.
	stored := ConfigResult{Name: "phases-reduced-store", PerBench: make(map[string]float64)}
	var storeTime time.Duration
	var storeResults []mica.BenchmarkReduced
	var storeStats *mica.StoreBuildStats
	rpcfg := mica.ReducedPipelineConfig{Reduced: cfg}
	storeDelta := snapMetrics()
	for r := 0; r < runs; r++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "mica-reduced-store-*")
		if err != nil {
			return err
		}
		start := time.Now()
		rs, stats, err := mica.AnalyzeReducedStoreCtx(ctx, set, rpcfg, mica.StoreOptions{Dir: dir})
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("reduced store: %w", err)
		}
		if d := time.Since(start); storeTime == 0 || d < storeTime {
			storeTime, storeResults, storeStats = d, rs, stats
		}
		os.RemoveAll(dir)
	}
	storeMaxErr := 0.0
	for i, rr := range storeResults {
		if e := rr.Result.MaxRelativeError(exacts[i]); e > storeMaxErr {
			storeMaxErr = e
		}
	}
	stored.MIPS = mips(totalInsts, storeTime)
	storeSpeedup := fullTime.Seconds() / storeTime.Seconds()
	stored.PerBench["seconds"] = storeTime.Seconds()
	stored.PerBench["speedup_vs_full"] = storeSpeedup
	stored.PerBench["max_rel_err"] = storeMaxErr
	// Cache accounting (decodes, peak bytes) and stage durations land
	// in Metrics via the registry delta instead of hand-picked keys.
	stored.Metrics = storeDelta()
	res.Configs = append(res.Configs, stored)

	t := report.NewTable("config", "MIPS", "time", "notes")
	t.AddRow("phases-full-grid", fmt.Sprintf("%.2f", full.MIPS), fullTime.Round(time.Millisecond), "")
	t.AddRow("phases-reduced", fmt.Sprintf("%.2f", red.MIPS), redTime.Round(time.Millisecond),
		fmt.Sprintf("%.2fx faster, max rel err %.2f%%", speedup, maxErr*100))
	t.AddRow("phases-reduced-store", fmt.Sprintf("%.2f", stored.MIPS), storeTime.Round(time.Millisecond),
		fmt.Sprintf("%.2fx faster, max rel err %.2f%%, %d decodes, peak %.1f KB cached",
			storeSpeedup, storeMaxErr*100, storeStats.Cache.Decodes, float64(storeStats.Cache.PeakBytes)/1e3))
	fmt.Print(t.String())

	return appendHistory(jsonOut, res)
}

// runJoint measures registry-scale joint phase analysis: the
// in-memory flat-matrix path against the store-backed streaming path
// (float32 and quant8 encodings), on the same benchmarks, grid and
// seed. Throughput is effective MIPS (profiled trace instructions per
// second of end-to-end wall time, characterization + clustering). The
// store entries record their on-disk size and whether their
// vocabulary (K + assignment) matches the in-memory one bit for bit,
// so the recorded numbers carry their fidelity with them. -bench
// defaults to the whole registry.
func runJoint(ctx context.Context, budget, interval uint64, maxK, runs int, benches, jsonOut, label string, seed int64) error {
	if runs < 1 {
		runs = 1
	}
	if interval == 0 || interval > budget {
		return fmt.Errorf("joint interval %d out of range for budget %d", interval, budget)
	}
	set := mica.Benchmarks()
	names := []string{fmt.Sprintf("registry-%d", len(set))}
	if benches != "" {
		var err error
		if names, set, err = resolveBenchmarks(benches); err != nil {
			return err
		}
	}
	pcfg := mica.PhasePipelineConfig{Phase: mica.PhaseConfig{
		IntervalLen:  interval,
		MaxIntervals: int(budget / interval),
		MaxK:         maxK,
		Seed:         seed,
	}}

	res := Result{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Budget:     budget,
		Interval:   interval,
		MaxK:       maxK,
		Runs:       runs,
		Benchmarks: names,
	}

	// In-memory reference.
	var ref *mica.PhaseJointResult
	var refTime time.Duration
	inmemDelta := snapMetrics()
	for r := 0; r < runs; r++ {
		start := time.Now()
		j, err := mica.AnalyzePhasesJointCtx(ctx, set, pcfg)
		if err != nil {
			return fmt.Errorf("joint in-memory: %w", err)
		}
		if d := time.Since(start); refTime == 0 || d < refTime {
			refTime, ref = d, j
		}
	}
	totalInsts := ref.TotalInsts()
	inmem := ConfigResult{Name: "joint-inmemory", MIPS: mips(totalInsts, refTime), PerBench: map[string]float64{
		"seconds":    refTime.Seconds(),
		"rows":       float64(len(ref.Rows)),
		"selected_k": float64(ref.K),
	}, Metrics: inmemDelta()}
	res.Configs = []ConfigResult{inmem}

	t := report.NewTable("config", "MIPS", "time", "K", "notes")
	t.AddRow("joint-inmemory", fmt.Sprintf("%.2f", inmem.MIPS), refTime.Round(time.Millisecond), ref.K, "")

	for _, sc := range []struct {
		name     string
		quantize bool
	}{{"joint-store", false}, {"joint-store-quant8", true}} {
		var best *mica.PhaseJointResult
		var bestStats *mica.StoreBuildStats
		var bestTime time.Duration
		var storeBytes int64
		delta := snapMetrics()
		for r := 0; r < runs; r++ {
			dir, err := os.MkdirTemp("", "mica-joint-store-*")
			if err != nil {
				return err
			}
			start := time.Now()
			j, stats, err := mica.AnalyzePhasesJointStoreCtx(ctx, set, pcfg, mica.StoreOptions{Dir: dir, Quantize: sc.quantize})
			if err != nil {
				os.RemoveAll(dir)
				return fmt.Errorf("%s: %w", sc.name, err)
			}
			if d := time.Since(start); bestTime == 0 || d < bestTime {
				bestTime, best, bestStats = d, j, stats
				storeBytes = dirSize(dir)
			}
			os.RemoveAll(dir)
		}
		identical := 0.0
		if best.K == ref.K && slices.Equal(best.Assign, ref.Assign) {
			identical = 1
		}
		cr := ConfigResult{Name: sc.name, MIPS: mips(totalInsts, bestTime), PerBench: map[string]float64{
			"seconds":         bestTime.Seconds(),
			"rows":            float64(len(best.Rows)),
			"selected_k":      float64(best.K),
			"store_bytes":     float64(storeBytes),
			"vocab_identical": identical,
		}, Metrics: delta()}
		res.Configs = append(res.Configs, cr)
		note := fmt.Sprintf("%.2fx of in-memory, %.1f MB store, %d decodes",
			bestTime.Seconds()/refTime.Seconds(), float64(storeBytes)/1e6, bestStats.Cache.Decodes)
		if identical == 1 {
			note += ", vocab identical"
		} else {
			note += fmt.Sprintf(", vocab differs (K %d vs %d)", best.K, ref.K)
		}
		t.AddRow(sc.name, fmt.Sprintf("%.2f", cr.MIPS), bestTime.Round(time.Millisecond), best.K, note)
	}
	fmt.Print(t.String())

	return appendHistory(jsonOut, res)
}

// runServe measures the serving layer: it builds a store over the
// selected benchmarks (default: the whole registry), opens it behind
// an in-process mica-serve HTTP daemon, and drives clients x queries
// concurrent similarity lookups through real HTTP. Throughput is
// queries per second of wall time (best of runs); the recorded entry
// carries the server-side p50/p99 latency from /api/v1/stats so the
// tracked history sees tail behaviour, not just the mean.
func runServe(ctx context.Context, budget, interval uint64, maxK, runs int, benches, jsonOut, label string, seed int64, clients, queries int) error {
	if runs < 1 {
		runs = 1
	}
	if clients < 1 || queries < 1 {
		return fmt.Errorf("serve measurement needs positive -clients and -queries (got %d, %d)", clients, queries)
	}
	if interval == 0 || interval > budget {
		return fmt.Errorf("serve interval %d out of range for budget %d", interval, budget)
	}
	set := mica.Benchmarks()
	names := []string{fmt.Sprintf("registry-%d", len(set))}
	if benches != "" {
		var err error
		if names, set, err = resolveBenchmarks(benches); err != nil {
			return err
		}
	}
	phase := mica.PhaseConfig{
		IntervalLen:  interval,
		MaxIntervals: int(budget / interval),
		MaxK:         maxK,
		Seed:         seed,
	}

	dir, err := os.MkdirTemp("", "mica-serve-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	buildStart := time.Now()
	st, _, err := mica.CharacterizeToStoreCtx(ctx, set,
		mica.PhasePipelineConfig{Phase: phase}, mica.StoreOptions{Dir: dir})
	if err != nil {
		return fmt.Errorf("serve store build: %w", err)
	}
	defer st.Close()
	buildTime := time.Since(buildStart)

	srv, err := serve.New(st, serve.Config{Phase: phase})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	benchNames := make([]string, len(set))
	for i, b := range set {
		benchNames[i] = b.Name()
	}

	var best time.Duration
	for r := 0; r < runs; r++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for q := 0; q < queries; q++ {
					bench := benchNames[(c*queries+q*31)%len(benchNames)]
					k := 1 + (c+q)%8
					resp, err := http.Get(fmt.Sprintf("%s/api/v1/similar?bench=%s&k=%d", base, bench, k))
					if err != nil {
						errCh <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("similar %s k=%d: status %d", bench, k, resp.StatusCode)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	total := clients * queries
	qps := float64(total) / best.Seconds()

	// Server-side latency percentiles over every request the daemon saw.
	resp, err := http.Get(base + "/api/v1/stats")
	if err != nil {
		return err
	}
	var sr struct {
		Endpoints map[string]serve.EndpointStats `json:"endpoints"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		return err
	}
	sim := sr.Endpoints["similar"]
	if sim.Errors != 0 {
		return fmt.Errorf("similar endpoint reported %d errors under the measurement load", sim.Errors)
	}

	res := Result{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Budget:     budget,
		Interval:   interval,
		MaxK:       maxK,
		Runs:       runs,
		Benchmarks: names,
		Configs: []ConfigResult{{
			Name: "serve-similarity",
			MIPS: qps,
			Unit: "queries/s",
			PerBench: map[string]float64{
				"seconds":       best.Seconds(),
				"clients":       float64(clients),
				"queries":       float64(total),
				"p50_ms":        sim.P50Ms,
				"p99_ms":        sim.P99Ms,
				"mean_ms":       sim.MeanMs,
				"build_seconds": buildTime.Seconds(),
			},
		}},
	}

	t := report.NewTable("config", "queries/s", "time", "notes")
	t.AddRow("serve-similarity", fmt.Sprintf("%.0f", qps), best.Round(time.Millisecond),
		fmt.Sprintf("%d clients x %d queries, p50 %.2fms, p99 %.2fms", clients, queries, sim.P50Ms, sim.P99Ms))
	fmt.Print(t.String())

	return appendHistory(jsonOut, res)
}

// runTrace measures the trace layer against the live VM on the same
// benchmarks and budget. With replay=false it records the recording
// tax: the raw VM against the VM with a trace.Writer attached (plus
// the on-disk bytes per instruction of the resulting files). With
// replay=true it pre-records every benchmark outside the timed region
// and measures replay throughput: the bare decode loop and the
// replayed 47-characteristic profile against their live-VM
// equivalents — the replay-raw entry records its speedup over live
// characterization, the number the trace format exists to deliver.
func runTrace(ctx context.Context, budget uint64, runs int, benches, jsonOut, label string, replay bool) error {
	if runs < 1 {
		runs = 1
	}
	names, set, err := resolveBenchmarks(benches)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "mica-trace-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	paths := make(map[string]string, len(set))
	for i, b := range set {
		paths[b.Name()] = filepath.Join(dir, fmt.Sprintf("b%d.trc", i))
	}

	res := Result{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Budget:     budget,
		Runs:       runs,
		Benchmarks: names,
	}

	micaCfg := mica.DefaultConfig()
	micaCfg.InstBudget = budget
	micaCfg.SkipHPC = true
	liveRaw := benchConfig{"live-vm-raw", func(b mica.Benchmark) (uint64, time.Duration, error) {
		start := time.Now()
		m, err := b.Instantiate()
		if err != nil {
			return 0, 0, err
		}
		n, err := m.Run(budget, nil)
		if err != nil && err != vm.ErrBudget {
			return 0, 0, err
		}
		return n, time.Since(start), nil
	}}

	var configs []benchConfig
	if replay {
		for _, b := range set {
			if _, err := mica.RecordTrace(b, paths[b.Name()], budget); err != nil {
				return fmt.Errorf("pre-recording %s: %w", b.Name(), err)
			}
		}
		configs = []benchConfig{
			liveRaw,
			{"live-vm-mica", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				pr, err := mica.Profile(b, micaCfg)
				if err != nil {
					return 0, 0, err
				}
				return pr.Insts, time.Since(start), nil
			}},
			{"replay-raw", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				src, err := mica.TraceBenchmark(b.Name(), paths[b.Name()]).Source()
				if err != nil {
					return 0, 0, err
				}
				n, err := src.Run(0, nil)
				if err != nil {
					return 0, 0, err
				}
				return n, time.Since(start), nil
			}},
			{"replay-mica", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				pr, err := mica.Profile(mica.TraceBenchmark(b.Name(), paths[b.Name()]), micaCfg)
				if err != nil {
					return 0, 0, err
				}
				return pr.Insts, time.Since(start), nil
			}},
		}
	} else {
		configs = []benchConfig{
			liveRaw,
			{"record-trace", func(b mica.Benchmark) (uint64, time.Duration, error) {
				start := time.Now()
				n, err := mica.RecordTrace(b, paths[b.Name()], budget)
				return n, time.Since(start), err
			}},
		}
	}

	t := report.NewTable("config", "MIPS", "insts", "time")
	for _, c := range configs {
		best := ConfigResult{Name: c.name, PerBench: make(map[string]float64)}
		var bestInsts uint64
		var bestTime time.Duration
		delta := snapMetrics()
		for r := 0; r < runs; r++ {
			var totalInsts uint64
			var totalTime time.Duration
			perBench := make(map[string]float64)
			for i, b := range set {
				if err := ctx.Err(); err != nil {
					return err
				}
				n, d, err := c.measure(b)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", c.name, names[i], err)
				}
				totalInsts += n
				totalTime += d
				perBench[names[i]] = mips(n, d)
			}
			if m := mips(totalInsts, totalTime); m > best.MIPS {
				best.MIPS = m
				best.PerBench = perBench
				bestInsts, bestTime = totalInsts, totalTime
			}
		}
		best.Metrics = delta()
		res.Configs = append(res.Configs, best)
		t.AddRow(c.name, fmt.Sprintf("%.2f", best.MIPS), bestInsts,
			bestTime.Round(time.Millisecond))
	}

	if replay {
		// The headline ratios: how much faster replay is than running
		// (and characterizing on) the live VM.
		liveMica := res.Configs[1].MIPS
		for i := 2; i < len(res.Configs); i++ {
			if liveMica > 0 {
				res.Configs[i].PerBench["speedup_vs_live_mica"] = res.Configs[i].MIPS / liveMica
			}
		}
	} else {
		// The recording tax and the on-disk cost of the trace files.
		var traceBytes int64
		for _, p := range paths {
			if fi, err := os.Stat(p); err == nil {
				traceBytes += fi.Size()
			}
		}
		if res.Configs[0].MIPS > 0 {
			res.Configs[1].PerBench["overhead_vs_raw"] = res.Configs[0].MIPS / res.Configs[1].MIPS
		}
		totalInsts := budget * uint64(len(set))
		if totalInsts > 0 {
			res.Configs[1].PerBench["bytes_per_inst"] = float64(traceBytes) / float64(totalInsts)
		}
	}
	fmt.Print(t.String())

	return appendHistory(jsonOut, res)
}

// dirSize sums the file sizes under dir (non-recursive: a store is a
// flat directory).
func dirSize(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if fi, err := e.Info(); err == nil && fi.Mode().IsRegular() {
			total += fi.Size()
		}
	}
	return total
}

// resolveBenchmarks turns a comma-separated -bench list (or the
// default representative set) into registry benchmarks.
func resolveBenchmarks(benches string) ([]string, []mica.Benchmark, error) {
	names := defaultSet
	if benches != "" {
		names = strings.Split(benches, ",")
	}
	set := make([]mica.Benchmark, 0, len(names))
	for _, n := range names {
		b, err := mica.BenchmarkByName(strings.TrimSpace(n))
		if err != nil {
			return nil, nil, err
		}
		set = append(set, b)
	}
	return names, set, nil
}

// benchConfig is one measured pipeline configuration.
type benchConfig struct {
	name    string
	measure func(b mica.Benchmark) (uint64, time.Duration, error)
}

// profilerConfigs are the three tracked profiler pipeline
// configurations of BENCH_profile.json.
func profilerConfigs(budget uint64) []benchConfig {
	return []benchConfig{
		{"raw-vm", func(b mica.Benchmark) (uint64, time.Duration, error) {
			// Instantiate is inside the timed region, as it is for the
			// profiler configs (Profile instantiates internally), so
			// the three configurations compare apples-to-apples.
			start := time.Now()
			m, err := b.Instantiate()
			if err != nil {
				return 0, 0, err
			}
			n, err := m.Run(budget, nil)
			if err != nil && err != vm.ErrBudget {
				return 0, 0, err
			}
			return n, time.Since(start), nil
		}},
		{"mica", func(b mica.Benchmark) (uint64, time.Duration, error) {
			cfg := mica.DefaultConfig()
			cfg.InstBudget = budget
			cfg.SkipHPC = true
			start := time.Now()
			pr, err := mica.Profile(b, cfg)
			if err != nil {
				return 0, 0, err
			}
			return pr.Insts, time.Since(start), nil
		}},
		{"mica+hpc", func(b mica.Benchmark) (uint64, time.Duration, error) {
			cfg := mica.DefaultConfig()
			cfg.InstBudget = budget
			start := time.Now()
			pr, err := mica.Profile(b, cfg)
			if err != nil {
				return 0, 0, err
			}
			return pr.Insts, time.Since(start), nil
		}},
	}
}

func mips(insts uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(insts) / d.Seconds() / 1e6
}
