// Command mica-serve is characterization-as-a-service: a long-running
// HTTP/JSON daemon over the mica library and a warm interval-vector
// store, serving the paper's workload-characterization queries to
// concurrent clients.
//
// At startup it builds (or incrementally reuses) the store for the
// selected benchmarks, optionally clusters the joint cross-benchmark
// phase vocabulary (warm-started from the state a previous run
// persisted next to the store), assembles the normalized-PCA
// similarity index from the cached vectors, and then listens. The
// endpoints:
//
//	POST /api/v1/characterize   {"benchmark": "suite/program/input"}
//	                            → 202 {job id}; jobs dedup in-flight and
//	                              completed work by the phase-config stamp
//	POST /api/v1/traces[?name=X] raw recorded-trace bytes (mica-profile
//	                            -record) → validated end to end, persisted
//	                            durably under -tracedir, characterized via
//	                            the same deduped job path (404 without
//	                            -tracedir; oversized 413, corrupt 400)
//	GET  /api/v1/jobs/{id}      → job status; Table I/II rows, phase
//	                              timeline and kiviat data when done
//	GET  /api/v1/similar?bench=X&k=5[&space=pca|phase]
//	                            → k nearest benchmarks in the normalized
//	                              PCA space (or joint phase-occupancy space)
//	GET  /api/v1/vectors?bench=X[&from=N&count=M]
//	                            → the benchmark's stored interval vectors
//	GET  /api/v1/benchmarks     → registry listing with store coverage
//	GET  /api/v1/stats          → per-endpoint latency/QPS, job and dedup
//	                              counters, store cache stats
//	GET  /api/v1/version        → build identity (module version, Go
//	                              toolchain, VCS revision + dirty bit)
//	GET  /metrics               → Prometheus text exposition over every
//	                              instrumented layer (serve, jobs, pool,
//	                              ivstore cache, pipeline stages)
//	GET  /healthz               → liveness
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ for
// live CPU/heap profiling (off by default; the endpoints expose
// process internals).
//
// Backpressure is explicit: a full job queue answers 429 with
// Retry-After, shutdown answers 503. SIGINT or SIGTERM stops the
// listener, drains accepted jobs and closes the store cleanly.
//
// Usage:
//
//	mica-serve -store phases.ivs [-addr 127.0.0.1:8344]
//	mica-serve -store phases.ivs -bench name,name,... [-interval 10000] [-intervals 100]
//	mica-serve -store phases.ivs -joint=false -workers 8 -queue 128 [-quant] [-cachebytes N]
//	mica-serve -store phases.ivs -tracedir traces/ [-maxupload 67108864]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mica"
	"mica/internal/obs"
	"mica/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8344", "listen address")
		storeDir     = flag.String("store", "", "interval-vector store directory (required; built/warmed at startup)")
		benchName    = flag.String("bench", "", "comma-separated benchmarks to serve (default: the whole registry)")
		intervalLen  = flag.Uint64("interval", 10_000, "interval length in dynamic instructions")
		maxIntervals = flag.Int("intervals", 100, "maximum number of intervals per benchmark")
		maxK         = flag.Int("maxk", 10, "maximum K for the BIC phase sweep")
		seed         = flag.Int64("seed", 2006, "k-means seed")
		workers      = flag.Int("workers", 0, "characterization workers for startup build and job pool (0 = GOMAXPROCS)")
		queueCap     = flag.Int("queue", 64, "pending characterization-job bound; a full queue answers 429")
		retain       = flag.Int("retain", 1024, "finished jobs kept pollable")
		quant        = flag.Bool("quant", false, "write 8-bit quantized shards instead of float32")
		incremental  = flag.Bool("incremental", true, "reuse unchanged shards at startup, characterizing only the rest")
		warm         = flag.Bool("warm", true, "seed the joint clustering from the previous run's persisted state")
		joint        = flag.Bool("joint", true, "cluster the joint phase vocabulary at startup (enables space=phase similarity)")
		cacheBytes   = flag.Int64("cachebytes", 0, "byte budget for the decoded-shard cache (0 = default)")
		pcaVar       = flag.Float64("pcavar", 0.9, "variance fraction the similarity index's PCA components must explain")
		skipHPC      = flag.Bool("skiphpc", false, "skip the EV56/EV67 machine models in characterization jobs")
		traceDir     = flag.String("tracedir", "", "enable POST /api/v1/traces; validated uploads are persisted here and characterized like registry benchmarks")
		maxUpload    = flag.Int64("maxupload", 64<<20, "uploaded-trace size bound in bytes; larger requests answer 413")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the serving address")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Build())
		return
	}

	fl := cliFlags{
		storeDir: *storeDir, addr: *addr, queueCap: *queueCap,
		retain: *retain, cacheBytes: *cacheBytes, pcaVar: *pcaVar,
		warm: *warm, joint: *joint, traceDir: *traceDir, maxUpload: *maxUpload,
		pprof: *pprofOn,
	}
	if err := validateFlags(fl); err != nil {
		fmt.Fprintln(os.Stderr, "mica-serve:", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancels the startup build exactly like the batch
	// CLIs (finished shards commit, an incremental restart resumes)
	// and, once serving, triggers the graceful drain below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, fl, mica.PhaseConfig{
		IntervalLen:  *intervalLen,
		MaxIntervals: *maxIntervals,
		MaxK:         *maxK,
		Seed:         *seed,
	}, mica.StoreOptions{
		Dir: *storeDir, Quantize: *quant, Incremental: *incremental,
		CacheBytes: *cacheBytes, WarmStart: *warm,
	}, *benchName, *workers, *skipHPC, nil); err != nil {
		fmt.Fprintln(os.Stderr, "mica-serve:", err)
		os.Exit(1)
	}
}

// cliFlags is the flag combination a run was invoked with, gathered
// for validation (and table-tested as one unit).
type cliFlags struct {
	storeDir   string
	addr       string
	queueCap   int
	retain     int
	cacheBytes int64
	pcaVar     float64
	warm       bool
	joint      bool
	traceDir   string
	maxUpload  int64
	pprof      bool
}

// validateFlags rejects inconsistent flag combinations up front, with
// errors that name the fix. nil means the combination is runnable.
func validateFlags(f cliFlags) error {
	switch {
	case f.storeDir == "":
		return fmt.Errorf("mica-serve serves from an interval-vector store; pass -store DIR")
	case f.addr == "":
		return fmt.Errorf("-addr wants a listen address")
	case f.queueCap <= 0:
		return fmt.Errorf("-queue wants a positive pending-job bound")
	case f.retain <= 0:
		return fmt.Errorf("-retain wants a positive finished-job bound")
	case f.cacheBytes < 0:
		return fmt.Errorf("-cachebytes wants a positive byte budget (0 = default)")
	case f.pcaVar <= 0 || f.pcaVar > 1:
		return fmt.Errorf("-pcavar wants a variance fraction in (0, 1]")
	case f.warm && !f.joint:
		return fmt.Errorf("-warm seeds the joint clustering; combine it with -joint")
	case f.traceDir != "" && f.maxUpload <= 0:
		return fmt.Errorf("-maxupload wants a positive byte bound")
	}
	return nil
}

// run warms the store, builds the serving state and serves until ctx
// is cancelled. ready, when non-nil, is told the bound listen address
// once the daemon is accepting connections (tests bind :0 and need
// the kernel-chosen port).
func run(ctx context.Context, fl cliFlags, phase mica.PhaseConfig, sopt mica.StoreOptions,
	benchName string, workers int, skipHPC bool, ready func(addr string)) error {
	bs, err := selectBenchmarks(benchName)
	if err != nil {
		return err
	}

	fmt.Printf("warming store %s (%d benchmarks)...\n", sopt.Dir, len(bs))
	begin := time.Now()
	st, bstats, err := mica.CharacterizeToStoreCtx(ctx, bs,
		mica.PhasePipelineConfig{Phase: phase, Workers: workers}, sopt)
	if st != nil {
		defer st.Close()
	}
	if err != nil {
		return err
	}
	if bstats != nil {
		fmt.Printf("store ready in %v: %d characterized, %d reused, %d rows\n",
			time.Since(begin).Round(time.Millisecond),
			len(bstats.Characterized), len(bstats.Reused), st.NumRows())
	}

	cfg := serve.Config{
		Phase:         phase,
		SkipHPC:       skipHPC,
		Workers:       workers,
		QueueCap:      fl.queueCap,
		Retain:        fl.retain,
		PCAVariance:   fl.pcaVar,
		TraceDir:      fl.traceDir,
		MaxTraceBytes: fl.maxUpload,
	}
	if fl.joint {
		begin = time.Now()
		j, warmUsed, err := mica.AnalyzePhasesJointOpenStoreCtx(ctx, st, phase, workers, fl.warm)
		if err != nil {
			return fmt.Errorf("joint vocabulary: %w", err)
		}
		fmt.Printf("joint vocabulary: K=%d over %d intervals in %v (warm start: %v)\n",
			j.K, len(j.Assign), time.Since(begin).Round(time.Millisecond), warmUsed)
		cfg.Joint = j
	}

	srv, err := serve.New(st, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", fl.addr)
	if err != nil {
		return err
	}
	// pprof is opt-in: the profiling endpoints leak heap contents and
	// can stall the runtime, so they only mount when the operator asks.
	handler := srv.Handler()
	if fl.pprof {
		mux := http.NewServeMux()
		mux.Handle("/", srv.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}

	// The listener dies when the context does; jobs accepted before
	// the signal drain before the store closes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Println("\nshutting down: draining jobs...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("serving %d benchmarks on http://%s (config %.12s...)\n",
		len(bs), ln.Addr(), srv.ConfigKey())
	if ready != nil {
		ready(ln.Addr().String())
	}
	err = httpSrv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	srv.Close()
	fmt.Println("drained; store closed cleanly")
	return nil
}

// selectBenchmarks resolves a comma-separated -bench list, or the
// whole registry when the list is empty.
func selectBenchmarks(benchName string) ([]mica.Benchmark, error) {
	if benchName == "" {
		return mica.Benchmarks(), nil
	}
	var bs []mica.Benchmark
	for _, n := range strings.Split(benchName, ",") {
		b, err := mica.BenchmarkByName(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		bs = append(bs, b)
	}
	return bs, nil
}
