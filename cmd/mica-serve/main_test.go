package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"mica"
	"mica/internal/obs"
)

func TestValidateFlags(t *testing.T) {
	ok := cliFlags{
		storeDir: "phases.ivs", addr: "127.0.0.1:8344", queueCap: 64,
		retain: 1024, pcaVar: 0.9, warm: true, joint: true,
	}
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string
	}{
		{"defaults", func(f *cliFlags) {}, ""},
		{"no store", func(f *cliFlags) { f.storeDir = "" }, "-store"},
		{"no addr", func(f *cliFlags) { f.addr = "" }, "-addr"},
		{"zero queue", func(f *cliFlags) { f.queueCap = 0 }, "-queue"},
		{"negative queue", func(f *cliFlags) { f.queueCap = -3 }, "-queue"},
		{"zero retain", func(f *cliFlags) { f.retain = 0 }, "-retain"},
		{"negative cache", func(f *cliFlags) { f.cacheBytes = -1 }, "-cachebytes"},
		{"zero pcavar", func(f *cliFlags) { f.pcaVar = 0 }, "-pcavar"},
		{"pcavar above one", func(f *cliFlags) { f.pcaVar = 1.5 }, "-pcavar"},
		{"warm without joint", func(f *cliFlags) { f.joint = false }, "-joint"},
		{"cold without joint", func(f *cliFlags) { f.joint = false; f.warm = false }, ""},
		{"tracedir", func(f *cliFlags) { f.traceDir = "td"; f.maxUpload = 1 << 20 }, ""},
		{"tracedir zero maxupload", func(f *cliFlags) { f.traceDir = "td" }, "-maxupload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want mention of %s", err, tc.wantErr)
			}
		})
	}
}

func TestSelectBenchmarks(t *testing.T) {
	all, err := selectBenchmarks("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(mica.Benchmarks()) {
		t.Fatalf("empty -bench selected %d benchmarks, want the whole registry (%d)",
			len(all), len(mica.Benchmarks()))
	}
	two, err := selectBenchmarks("MiBench/sha/large, SPEC2000/gzip/program")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name() != "MiBench/sha/large" || two[1].Name() != "SPEC2000/gzip/program" {
		t.Fatalf("explicit list resolved to %v", two)
	}
	if _, err := selectBenchmarks("no/such/bench"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestRunServesAndDrains boots the daemon end to end on a tiny
// two-benchmark store — warm build, joint vocabulary, live HTTP — then
// cancels the context and verifies the graceful drain.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fl := cliFlags{
		storeDir: t.TempDir(), addr: "127.0.0.1:0", queueCap: 8,
		retain: 16, pcaVar: 0.9, warm: true, joint: true, pprof: true,
	}
	phase := mica.PhaseConfig{IntervalLen: 1_000, MaxIntervals: 8, MaxK: 3, Seed: 1}
	sopt := mica.StoreOptions{Dir: fl.storeDir, Incremental: true, WarmStart: true}

	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	out := captureStdout(t)
	go func() {
		runErr <- run(ctx, fl, phase, sopt,
			"MiBench/sha/large,SPEC2000/gzip/program", 2, false,
			func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon never came up")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// A similarity query against the live daemon answers from the
	// two-benchmark store.
	resp, err = http.Get("http://" + addr + "/api/v1/similar?bench=MiBench/sha/large&k=1")
	if err != nil {
		t.Fatal(err)
	}
	var sim struct {
		Neighbors []struct {
			Name string `json:"name"`
		} `json:"neighbors"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sim)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("similar: status %d, err %v", resp.StatusCode, err)
	}
	if len(sim.Neighbors) != 1 || sim.Neighbors[0].Name != "SPEC2000/gzip/program" {
		t.Fatalf("similar neighbors %v, want the other stored benchmark", sim.Neighbors)
	}

	// The daemon's /metrics scrape must be well-formed Prometheus text
	// exposition and cover the layers the startup build exercised.
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d, err %v", resp.StatusCode, err)
	}
	obs.AssertWellFormedExposition(t, string(metrics))
	for _, want := range []string{"mica_serve_requests_total", "mica_ivstore_cache_decodes_total", "mica_stage_runs_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}

	// pprof was requested, so the profiling index must answer on the
	// same address.
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon never drained")
	}

	got := out()
	for _, want := range []string{
		"store ready",
		"joint vocabulary: K=",
		"serving 2 benchmarks",
		"drained; store closed cleanly",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// captureStdout redirects stdout until the returned function is
// called, which restores it and hands back everything printed.
func captureStdout(t *testing.T) func() string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	return func() string {
		w.Close()
		os.Stdout = old
		return <-done
	}
}
