// Command mica-phases runs interval-based phase analysis — the
// SimPoint-style extension of the paper's Table II characterization —
// over one benchmark, the whole registry, or a joint cross-benchmark
// phase space, and drives phase-aware reduced profiling on top of it.
//
// For a single benchmark it prints the phase timeline, the weighted
// representative simulation points and the reconstruction error of the
// weighted vector against the full interval aggregate. With -all it
// runs the sharded registry-wide pipeline (one pooled profiler per
// worker) and prints one summary row per benchmark in Table I order.
// With -joint it characterizes every selected benchmark, clusters ALL
// intervals once into a shared phase vocabulary, and prints each
// benchmark's occupancy of the shared phases plus the cross-benchmark
// representative intervals. With -cache the expensive profiling +
// clustering step is persisted to a JSON file and skipped entirely on
// reruns with the same configuration.
//
// With -reduced the tool runs two-pass reduced profiling instead: a
// cheap sampled pass measuring only the paper's 8 GA-selected key
// characteristics positions every interval in the phase space, and a
// replay pass pays the full 47-characteristic + EV56/EV67 HPC
// characterization only on a few intervals per phase, extrapolating
// the whole-run vectors. Combined with -joint, the shared vocabulary's
// intervals are measured once for the entire benchmark set. Combined
// with -cache, a rerun skips both passes, and a cached vocabulary
// alone (same cheap configuration) still skips the cheap pass.
//
// With -store DIR the pipelines run through the on-disk
// interval-vector store instead of one in-memory matrix: every
// benchmark's intervals are written as a columnar shard (float32, or
// 8-bit quantized with -quant), and the analysis reads rows back
// through a byte-budgeted decoded-shard cache (-cachebytes), so
// registry-scale runs no longer need the whole matrix in memory.
// -store combines with -joint (streaming joint clustering), with
// -reduced (the cheap pass lands in the store, the replay gathers
// representatives back out of it), and with both at once. With
// -incremental a rerun reuses every shard whose benchmark and
// configuration are unchanged and re-characterizes only the rest;
// with -warm a joint rerun additionally seeds its clustering from the
// state the previous run persisted next to the store.
//
// Usage:
//
//	mica-phases -bench SPEC2000/twolf/ref [-interval 10000] [-intervals 100]
//	mica-phases -trace recorded.trc [-bench display/name/here]
//	mica-phases -all [-workers 8] [-maxk 10] [-seed 2006] [-cache phases.json]
//	mica-phases -joint [-bench name,name,...] [-maxk 10] [-cache joint.json]
//	mica-phases -joint -store phases.ivs [-quant] [-incremental] [-warm] [-cachebytes N]
//	mica-phases -store phases.ivs -fsck [-repair]
//	mica-phases -reduced [-bench name | -all | -joint] [-sample 0.2] [-reps 3] [-cache reduced.json]
//	mica-phases -reduced [-joint] -store phases.ivs [-incremental] [-cachebytes N]
//
// SIGINT or SIGTERM cancels the run cleanly: in-flight benchmarks
// drain, store-backed runs commit every shard finished so far, and a
// rerun with -incremental resumes from the committed shards instead
// of starting over. -fsck verifies a store's integrity (manifest,
// per-shard CRCs, crash artifacts) and -fsck -repair quarantines
// corrupt shards and clears crash debris so the store reopens
// cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mica"
	"mica/internal/obs"
	"mica/internal/report"
)

func main() {
	var (
		benchName    = flag.String("bench", "", "benchmark to analyze (suite/program/input); with -joint, a comma-separated list")
		all          = flag.Bool("all", false, "analyze all 122 benchmarks with the sharded pipeline")
		joint        = flag.Bool("joint", false, "cluster the selected benchmarks' intervals jointly into one shared phase vocabulary")
		reduced      = flag.Bool("reduced", false, "two-pass reduced profiling: cheap key-characteristic pass positions intervals, full 47-dim + HPC characterization paid only on per-phase measured intervals")
		cache        = flag.String("cache", "", "JSON phase cache: load results from this file when configuration matches, write them otherwise")
		storeDir     = flag.String("store", "", "with -joint: run store-backed, streaming joint analysis through an interval-vector store at this directory")
		quant        = flag.Bool("quant", false, "with -store: write 8-bit quantized shards instead of float32")
		incremental  = flag.Bool("incremental", false, "with -store: reuse unchanged shards, re-characterizing only benchmarks whose configuration or membership changed")
		intervalLen  = flag.Uint64("interval", 10_000, "interval length in dynamic instructions")
		maxIntervals = flag.Int("intervals", 100, "maximum number of intervals per benchmark")
		maxK         = flag.Int("maxk", 10, "maximum K for the BIC phase sweep")
		seed         = flag.Int64("seed", 2006, "k-means seed")
		workers      = flag.Int("workers", 0, "pipeline workers for -all/-joint (0 = GOMAXPROCS)")
		sampleFrac   = flag.Float64("sample", 0, "cheap-pass sample fraction per interval with -reduced (0 = default 0.2)")
		repsPerPhase = flag.Int("reps", 0, "measured intervals per phase with -reduced (0 = default 3)")
		skipHPC      = flag.Bool("skiphpc", false, "skip the EV56/EV67 machine models on the reduced replay pass")
		cacheBytes   = flag.Int64("cachebytes", 0, "with -store: byte budget for the decoded-shard cache (0 = default: all shards, clamped to 1 GiB)")
		warm         = flag.Bool("warm", false, "with -joint -store: seed the clustering from the warm state a previous run persisted next to the store")
		fsck         = flag.Bool("fsck", false, "with -store: verify the store's integrity (manifest, per-shard CRCs, crash artifacts) and exit")
		repair       = flag.Bool("repair", false, "with -store -fsck: quarantine corrupt shards and remove crash artifacts so the store reopens cleanly")
		tracePath    = flag.String("trace", "", "analyze a recorded trace file instead of an embedded benchmark (phase analysis replays it twice)")
		statsOut     = flag.String("stats", "", "after the run, dump the observability registry (stage durations, cache/pool counters) as JSON to this file (\"-\" = stdout)")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Build())
		return
	}

	// A signal cancels the pipeline context instead of killing the
	// process mid-write: workers drain, finished shards commit, and an
	// -incremental rerun resumes from them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := mica.PhaseConfig{
		IntervalLen:  *intervalLen,
		MaxIntervals: *maxIntervals,
		MaxK:         *maxK,
		Seed:         *seed,
	}
	sopt := mica.StoreOptions{
		Dir: *storeDir, Quantize: *quant, Incremental: *incremental,
		CacheBytes: *cacheBytes, WarmStart: *warm,
	}
	fl := cliFlags{
		bench: *benchName, all: *all, joint: *joint, reduced: *reduced,
		cache: *cache, storeDir: *storeDir, quant: *quant, incremental: *incremental,
		warm: *warm, cacheBytes: *cacheBytes, fsck: *fsck, repair: *repair,
		trace: *tracePath,
	}
	err := validateFlags(fl)
	switch {
	case err != nil:
	case *fsck || *repair:
		err = runFsck(*storeDir, *repair)
	case *reduced:
		rcfg := mica.ReducedConfig{
			Phase:        cfg,
			SampleFrac:   *sampleFrac,
			RepsPerPhase: *repsPerPhase,
			SkipHPC:      *skipHPC,
		}
		err = runReduced(ctx, *benchName, *all, *joint, *cache, rcfg, sopt, *workers)
	default:
		err = run(ctx, *benchName, *tracePath, *all, *joint, *cache, sopt, cfg, *workers)
	}
	// The stats dump happens even after a failed run: a partial
	// snapshot (what characterized, how long each stage took before
	// the error) is exactly what a post-mortem wants.
	if *statsOut != "" {
		if serr := obs.DumpStats(*statsOut); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mica-phases:", err)
		os.Exit(1)
	}
}

// cliFlags is the flag combination a run was invoked with, gathered
// for validation (and table-tested as one unit).
type cliFlags struct {
	bench               string
	all, joint, reduced bool
	cache, storeDir     string
	quant, incremental  bool
	warm                bool
	cacheBytes          int64
	fsck, repair        bool
	trace               string
}

// validateFlags rejects inconsistent flag combinations up front, with
// errors that name the fix. nil means the combination is runnable.
func validateFlags(f cliFlags) error {
	switch {
	case f.fsck || f.repair:
		switch {
		case f.storeDir == "":
			return fmt.Errorf("-fsck/-repair check an interval-vector store; pass -store DIR")
		case f.repair && !f.fsck:
			return fmt.Errorf("-repair rides on the fsck pass; pass -fsck -repair")
		}
		return nil
	case f.storeDir != "" && f.cache != "":
		return fmt.Errorf("-store and -cache are alternative persistence layers; pass one")
	case f.storeDir != "" && !f.joint && !f.reduced:
		return fmt.Errorf("-store drives the joint and reduced pipelines; combine it with -joint, -reduced, or both")
	case f.storeDir == "" && (f.quant || f.incremental || f.warm || f.cacheBytes != 0):
		return fmt.Errorf("-quant, -incremental, -warm and -cachebytes only apply to -store runs")
	case f.cacheBytes < 0:
		return fmt.Errorf("-cachebytes wants a positive byte budget (0 = default)")
	case f.warm && !f.joint:
		return fmt.Errorf("-warm seeds the joint clustering; combine it with -joint")
	case f.trace != "" && (f.all || f.joint || f.reduced):
		return fmt.Errorf("-trace analyzes one recorded file; it does not combine with -all, -joint or -reduced")
	case f.trace != "" && f.cache != "":
		return fmt.Errorf("-cache is keyed by benchmark name, which a trace file's contents can drift from; drop -cache for -trace runs")
	}
	return nil
}

// runFsck verifies (and with repair, repairs) the store at dir. A
// dirty store makes the verify-only form exit nonzero so scripts can
// gate on it; a successful repair exits zero with the report of what
// was quarantined or removed.
func runFsck(dir string, repair bool) error {
	if repair {
		rep, err := mica.RepairIVStore(dir)
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		if len(rep.Quarantined) > 0 {
			fmt.Printf("%d shards quarantined; rerun with -joint -store %s -incremental to re-characterize exactly those benchmarks\n",
				len(rep.Quarantined), dir)
		}
		return nil
	}
	rep, err := mica.VerifyIVStore(dir)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if !rep.Clean() {
		return fmt.Errorf("store %s failed verification; run -fsck -repair to quarantine bad shards and clear crash artifacts", dir)
	}
	return nil
}

func run(ctx context.Context, benchName, tracePath string, all, joint bool, cache string, sopt mica.StoreOptions, cfg mica.PhaseConfig, workers int) error {
	pcfg := mica.PhasePipelineConfig{
		Phase:    cfg,
		Workers:  workers,
		Progress: progressLine,
	}
	switch {
	case joint && sopt.Dir != "":
		bs, err := selectBenchmarks(benchName)
		if err != nil {
			return err
		}
		j, stats, err := mica.AnalyzePhasesJointStoreCtx(ctx, bs, pcfg, sopt)
		if stats != nil {
			reportStoreBuild(sopt.Dir, stats, err != nil)
		}
		if err != nil {
			return err
		}
		return renderJoint(j)

	case joint:
		bs, err := selectBenchmarks(benchName)
		if err != nil {
			return err
		}
		j, hit, err := analyzeJoint(ctx, cache, bs, pcfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
		if hit {
			fmt.Printf("loaded joint phase results from %s (profiling skipped)\n\n", cache)
		}
		return renderJoint(j)

	case all:
		results, hit, err := analyzeAll(ctx, cache, pcfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
		if hit {
			fmt.Printf("loaded phase results from %s (profiling skipped)\n\n", cache)
		}
		t := report.NewTable("benchmark", "intervals", "insts", "phases", "top weight", "recon err")
		for _, r := range results {
			res := r.Result
			top := 0.0
			if len(res.Representatives) > 0 {
				top = res.Representatives[0].Weight
			}
			t.AddRow(r.Benchmark.Name(), len(res.Intervals), res.TotalInsts(), res.K,
				fmt.Sprintf("%.3f", top), fmt.Sprintf("%.4f", res.ReconstructionError()))
		}
		fmt.Print(t.String())
		return nil

	case benchName != "" || tracePath != "":
		var b mica.Benchmark
		if tracePath != "" {
			b = mica.TraceBenchmark(benchName, tracePath)
		} else {
			var err error
			b, err = mica.BenchmarkByName(benchName)
			if err != nil {
				return err
			}
		}
		res, hit, err := analyzeSingle(cache, b, pcfg)
		if err != nil {
			return err
		}
		if cache != "" && !hit {
			fmt.Fprintln(os.Stderr) // terminate the \r progress line
		}
		if hit {
			fmt.Printf("loaded phase results from %s (profiling skipped)\n\n", cache)
		}
		fmt.Printf("%s: %d intervals of %d instructions -> %d phases\n\n",
			b.Name(), len(res.Intervals), cfg.IntervalLen, res.K)

		fmt.Println("phase timeline (one symbol per interval):")
		for _, p := range res.Assign {
			fmt.Printf("%c", 'A'+p%26)
		}
		fmt.Println()

		fmt.Println("\nrepresentative simulation points:")
		t := report.NewTable("phase", "interval", "instructions", "weight", "loads", "branches", "ILP-256")
		for _, rep := range res.Representatives {
			iv := res.Intervals[rep.Interval]
			t.AddRow(phaseLabel(rep.Phase), rep.Interval,
				fmt.Sprintf("%d..%d", iv.Start, iv.Start+iv.Insts),
				fmt.Sprintf("%.3f", rep.Weight),
				fmt.Sprintf("%.3f", res.Vectors.At(rep.Interval, 0)),
				fmt.Sprintf("%.3f", res.Vectors.At(rep.Interval, 2)),
				fmt.Sprintf("%.2f", res.Vectors.At(rep.Interval, 9)))
		}
		fmt.Print(t.String())

		fmt.Printf("\nweighted-vector reconstruction error: %.4f mean abs per characteristic\n",
			res.ReconstructionError())
		return nil

	default:
		return fmt.Errorf("pass -bench <name>, -trace <file>, -all or -joint")
	}
}

func progressLine(done, total int, name string) {
	fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-60s", done, total, name)
}

// reportStoreBuild summarizes what a store-backed run did — including
// a failed or cancelled one, whose partial commit is the resume point
// for the next -incremental rerun.
func reportStoreBuild(dir string, stats *mica.StoreBuildStats, failed bool) {
	fmt.Fprintln(os.Stderr)
	out := os.Stdout
	if failed {
		// A failing run's summary belongs with its error, not in the
		// result stream.
		out = os.Stderr
	}
	fmt.Fprintf(out, "store %s: %d shards characterized, %d reused in place\n",
		dir, len(stats.Characterized), len(stats.Reused))
	if len(stats.Failed) > 0 {
		fmt.Fprintf(out, "  failed: %s\n", strings.Join(stats.Failed, ", "))
	}
	if len(stats.Skipped) > 0 {
		fmt.Fprintf(out, "  skipped (cancelled before dispatch): %d benchmarks\n", len(stats.Skipped))
	}
	for _, w := range stats.CommitWarnings {
		fmt.Fprintf(out, "  commit warning: %s\n", w)
	}
	if stats.WarmStarted {
		fmt.Fprintf(out, "  clustering warm-started from the previous run's state\n")
	}
	if stats.Cache.Decodes > 0 {
		fmt.Fprintf(out, "  decoded-shard cache: %d decodes, %d hits, %d evictions, peak %d bytes (budget %d)\n",
			stats.Cache.Decodes, stats.Cache.Hits, stats.Cache.Evictions, stats.Cache.PeakBytes, stats.Cache.BudgetBytes)
	}
	if failed && len(stats.Characterized)+len(stats.Reused) > 0 {
		fmt.Fprintf(out, "  committed shards are durable; rerun with -incremental to resume from them\n")
	}
	if !failed {
		fmt.Fprintln(out)
	}
}

// runReduced drives the two-pass reduced pipelines.
func runReduced(ctx context.Context, benchName string, all, joint bool, cache string, rcfg mica.ReducedConfig, sopt mica.StoreOptions, workers int) error {
	pcfg := mica.ReducedPipelineConfig{
		Reduced:  rcfg,
		Workers:  workers,
		Progress: progressLine,
	}
	switch {
	case joint && sopt.Dir != "":
		bs, err := selectBenchmarks(benchName)
		if err != nil {
			return err
		}
		jr, stats, err := mica.AnalyzeReducedJointStoreCtx(ctx, bs, pcfg, sopt)
		if stats != nil {
			reportStoreBuild(sopt.Dir, stats, err != nil)
		}
		if err != nil {
			return err
		}
		return renderReducedJoint(jr)

	case sopt.Dir != "":
		bs := mica.Benchmarks()
		if !all {
			var err error
			if bs, err = selectBenchmarks(benchName); err != nil {
				return err
			}
		}
		results, stats, err := mica.AnalyzeReducedStoreCtx(ctx, bs, pcfg, sopt)
		if stats != nil {
			reportStoreBuild(sopt.Dir, stats, err != nil)
		}
		if err != nil {
			return err
		}
		if len(results) == 1 {
			return renderReducedSingle(results[0])
		}
		t := report.NewTable("benchmark", "intervals", "phases", "measured", "full insts", "skipped insts")
		for _, r := range results {
			res := r.Result
			t.AddRow(r.Benchmark.Name(), len(res.Phases.Intervals), res.Phases.K,
				len(res.Measured), res.MeasuredInsts, res.SkippedInsts)
		}
		fmt.Print(t.String())
		return nil

	case joint:
		bs, err := selectBenchmarks(benchName)
		if err != nil {
			return err
		}
		jr, hit, err := analyzeReducedJoint(ctx, cache, bs, pcfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
		if hit {
			fmt.Printf("loaded joint vocabulary from %s (cheap pass skipped)\n\n", cache)
		}
		return renderReducedJoint(jr)

	case all, benchName != "":
		bs := mica.Benchmarks()
		if !all {
			var err error
			if bs, err = selectBenchmarks(benchName); err != nil {
				return err
			}
		}
		results, hit, err := analyzeReduced(ctx, cache, bs, pcfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
		if hit != mica.ReducedMiss {
			fmt.Printf("%s from %s\n\n", hit, cache)
		}
		if len(results) == 1 {
			return renderReducedSingle(results[0])
		}
		t := report.NewTable("benchmark", "intervals", "phases", "measured", "full insts", "skipped insts")
		for _, r := range results {
			res := r.Result
			t.AddRow(r.Benchmark.Name(), len(res.Phases.Intervals), res.Phases.K,
				len(res.Measured), res.MeasuredInsts, res.SkippedInsts)
		}
		fmt.Print(t.String())
		return nil

	default:
		return fmt.Errorf("pass -bench <name>, -all or -joint")
	}
}

// renderReducedSingle prints one benchmark's reduced profile: the
// measurement plan, the extrapolated whole-run vectors and the cost
// accounting.
func renderReducedSingle(r mica.BenchmarkReduced) error {
	res := r.Result
	ph := res.Phases
	fmt.Printf("%s: %d intervals -> %d phases, %d intervals measured in full\n\n",
		r.Benchmark.Name(), len(ph.Intervals), ph.K, len(res.Measured))

	fmt.Println("measured intervals (full 47-dim + HPC characterization):")
	t := report.NewTable("phase", "interval", "insts", "loads", "ILP-256", "IPC EV56")
	for _, mi := range res.Measured {
		ipc := "-"
		if res.HasHPC {
			ipc = fmt.Sprintf("%.3f", mi.HPC[0])
		}
		t.AddRow(phaseLabel(mi.Phase), mi.Interval, mi.Insts,
			fmt.Sprintf("%.3f", mi.Chars[0]), fmt.Sprintf("%.2f", mi.Chars[9]), ipc)
	}
	fmt.Print(t.String())

	fmt.Println("\nextrapolated whole-run profile (phase-weighted):")
	et := report.NewTable("metric", "value")
	et.AddRow("pct loads", fmt.Sprintf("%.4f", res.Chars[0]))
	et.AddRow("pct branches", fmt.Sprintf("%.4f", res.Chars[2]))
	et.AddRow("ILP-256", fmt.Sprintf("%.2f", res.Chars[9]))
	if res.HasHPC {
		et.AddRow("IPC EV56", fmt.Sprintf("%.3f", res.HPC[0]))
		et.AddRow("IPC EV67", fmt.Sprintf("%.3f", res.HPC[1]))
	}
	fmt.Print(et.String())

	total := res.TotalInsts()
	fmt.Printf("\ncost: cheap pass observed %d insts (%.0f%%), replay measured %d (%.1f%%), fast-forwarded %d\n",
		res.SampledInsts, 100*float64(res.SampledInsts)/float64(total),
		res.MeasuredInsts, 100*float64(res.MeasuredInsts)/float64(total),
		res.SkippedInsts)
	return nil
}

// renderReducedJoint prints a joint reduction: the shared measurement
// plan and every benchmark's extrapolated vectors.
func renderReducedJoint(jr *mica.PhaseJointReduced) error {
	j := jr.Joint
	fmt.Printf("joint reduced profile: %d benchmarks, %d shared phases, %d intervals measured in full\n\n",
		len(j.Benchmarks), j.K, len(jr.Measured))

	fmt.Println("shared measured intervals:")
	t := report.NewTable("phase", "benchmark", "interval", "insts")
	for _, mi := range jr.Measured {
		t.AddRow(phaseLabel(mi.Phase), j.Benchmarks[mi.Bench], mi.Interval, mi.Insts)
	}
	fmt.Print(t.String())

	fmt.Println("\nper-benchmark extrapolations (from the shared measurements):")
	et := report.NewTable("benchmark", "pct loads", "ILP-256", "IPC EV56")
	for bi, name := range j.Benchmarks {
		ipc := "-"
		if jr.HasHPC {
			ipc = fmt.Sprintf("%.3f", jr.HPC[bi][0])
		}
		et.AddRow(name, fmt.Sprintf("%.4f", jr.Chars[bi][0]), fmt.Sprintf("%.2f", jr.Chars[bi][9]), ipc)
	}
	fmt.Print(et.String())

	fmt.Printf("\ncost: replay measured %d insts, fast-forwarded %d across the whole set\n",
		jr.MeasuredInsts, jr.SkippedInsts)
	return nil
}

// phaseLabel names phase p: A..Z, then A26..Z26, A52.. so labels stay
// unique however large the BIC sweep's K is. The timeline keeps the
// bare one-rune cycle (one symbol per interval is its whole point).
func phaseLabel(p int) string {
	if p < 26 {
		return fmt.Sprintf("%c", 'A'+p)
	}
	return fmt.Sprintf("%c%d", 'A'+p%26, p-p%26)
}

// selectBenchmarks resolves a comma-separated -bench list, or the whole
// registry when the list is empty.
func selectBenchmarks(benchName string) ([]mica.Benchmark, error) {
	if benchName == "" {
		return mica.Benchmarks(), nil
	}
	var bs []mica.Benchmark
	for _, n := range strings.Split(benchName, ",") {
		b, err := mica.BenchmarkByName(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		bs = append(bs, b)
	}
	return bs, nil
}

// analyzeJoint runs the joint pipeline, through the cache when one is
// configured. (The cached path stays context-free: a hit does no
// profiling, and a miss that gets interrupted simply leaves no cache
// file — reruns start clean.)
func analyzeJoint(ctx context.Context, cache string, bs []mica.Benchmark, pcfg mica.PhasePipelineConfig) (*mica.PhaseJointResult, bool, error) {
	if cache != "" {
		return mica.AnalyzePhasesJointCached(cache, bs, pcfg)
	}
	j, err := mica.AnalyzePhasesJointCtx(ctx, bs, pcfg)
	return j, false, err
}

// analyzeSingle runs one benchmark's phase analysis, through the cache
// (as a one-benchmark pipeline) when one is configured.
func analyzeSingle(cache string, b mica.Benchmark, pcfg mica.PhasePipelineConfig) (*mica.PhaseResult, bool, error) {
	if cache != "" {
		results, hit, err := mica.AnalyzePhasesCached(cache, []mica.Benchmark{b}, pcfg)
		if err != nil {
			return nil, false, err
		}
		return results[0].Result, hit, nil
	}
	res, err := mica.AnalyzePhases(b, pcfg.Phase)
	return res, false, err
}

// analyzeAll runs the registry pipeline, through the cache when one is
// configured.
func analyzeAll(ctx context.Context, cache string, pcfg mica.PhasePipelineConfig) ([]mica.BenchmarkPhases, bool, error) {
	if cache != "" {
		return mica.AnalyzePhasesCached(cache, mica.Benchmarks(), pcfg)
	}
	results, err := mica.AnalyzePhasesBenchmarksCtx(ctx, mica.Benchmarks(), pcfg)
	return results, false, err
}

// analyzeReduced runs the reduced pipeline, through the cache when one
// is configured.
func analyzeReduced(ctx context.Context, cache string, bs []mica.Benchmark, pcfg mica.ReducedPipelineConfig) ([]mica.BenchmarkReduced, mica.ReducedCacheHit, error) {
	if cache != "" {
		return mica.AnalyzeReducedCached(cache, bs, pcfg)
	}
	results, err := mica.AnalyzeReducedBenchmarksCtx(ctx, bs, pcfg)
	return results, mica.ReducedMiss, err
}

// analyzeReducedJoint runs the joint reduced pipeline, through the
// vocabulary cache when one is configured.
func analyzeReducedJoint(ctx context.Context, cache string, bs []mica.Benchmark, pcfg mica.ReducedPipelineConfig) (*mica.PhaseJointReduced, bool, error) {
	if cache != "" {
		return mica.AnalyzeReducedJointCached(cache, bs, pcfg)
	}
	jr, err := mica.AnalyzeReducedJointCtx(ctx, bs, pcfg)
	return jr, false, err
}

// renderJoint prints the shared vocabulary: size, per-benchmark
// occupancy of every shared phase, and the cross-benchmark
// representatives.
func renderJoint(j *mica.PhaseJointResult) error {
	fmt.Printf("joint phase space: %d benchmarks, %d intervals, %d insts -> %d shared phases\n\n",
		len(j.Benchmarks), len(j.Rows), j.TotalInsts(), j.K)

	header := []string{"benchmark"}
	for c := 0; c < j.K; c++ {
		header = append(header, phaseLabel(c))
	}
	t := report.NewTable(header...)
	for b, name := range j.Benchmarks {
		row := []any{name}
		for c := 0; c < j.K; c++ {
			row = append(row, fmt.Sprintf("%.3f", j.PhaseShare(b, c)))
		}
		t.AddRow(row...)
	}
	fmt.Println("per-benchmark occupancy of the shared phases (instruction shares):")
	fmt.Print(t.String())

	fmt.Println("\ncross-benchmark representative intervals:")
	rt := report.NewTable("phase", "weight", "benchmark", "interval")
	for _, rep := range j.Representatives {
		rt.AddRow(phaseLabel(rep.Phase),
			fmt.Sprintf("%.3f", rep.Weight),
			j.Benchmarks[rep.Bench], rep.Interval)
	}
	fmt.Print(rt.String())
	return nil
}
