// Command mica-phases runs interval-based phase analysis — the
// SimPoint-style extension of the paper's Table II characterization —
// over one benchmark or the whole registry.
//
// For a single benchmark it prints the phase timeline, the weighted
// representative simulation points and the reconstruction error of the
// weighted vector against the full interval aggregate. With -all it
// runs the sharded registry-wide pipeline (one pooled profiler per
// worker) and prints one summary row per benchmark in Table I order.
//
// Usage:
//
//	mica-phases -bench SPEC2000/twolf/ref [-interval 10000] [-intervals 100]
//	mica-phases -all [-workers 8] [-maxk 10] [-seed 2006]
package main

import (
	"flag"
	"fmt"
	"os"

	"mica"
	"mica/internal/report"
)

func main() {
	var (
		benchName    = flag.String("bench", "", "benchmark to analyze (suite/program/input)")
		all          = flag.Bool("all", false, "analyze all 122 benchmarks with the sharded pipeline")
		intervalLen  = flag.Uint64("interval", 10_000, "interval length in dynamic instructions")
		maxIntervals = flag.Int("intervals", 100, "maximum number of intervals per benchmark")
		maxK         = flag.Int("maxk", 10, "maximum K for the BIC phase sweep")
		seed         = flag.Int64("seed", 2006, "k-means seed")
		workers      = flag.Int("workers", 0, "pipeline workers for -all (0 = GOMAXPROCS)")
	)
	flag.Parse()
	cfg := mica.PhaseConfig{
		IntervalLen:  *intervalLen,
		MaxIntervals: *maxIntervals,
		MaxK:         *maxK,
		Seed:         *seed,
	}
	if err := run(*benchName, *all, cfg, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "mica-phases:", err)
		os.Exit(1)
	}
}

func run(benchName string, all bool, cfg mica.PhaseConfig, workers int) error {
	switch {
	case all:
		pcfg := mica.PhasePipelineConfig{
			Phase:   cfg,
			Workers: workers,
			Progress: func(done, total int, name string) {
				fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-60s", done, total, name)
			},
		}
		results, err := mica.AnalyzePhasesAll(pcfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr)
		t := report.NewTable("benchmark", "intervals", "insts", "phases", "top weight", "recon err")
		for _, r := range results {
			res := r.Result
			top := 0.0
			if len(res.Representatives) > 0 {
				top = res.Representatives[0].Weight
			}
			t.AddRow(r.Benchmark.Name(), len(res.Intervals), res.TotalInsts(), res.K,
				fmt.Sprintf("%.3f", top), fmt.Sprintf("%.4f", res.ReconstructionError()))
		}
		fmt.Print(t.String())
		return nil

	case benchName != "":
		b, err := mica.BenchmarkByName(benchName)
		if err != nil {
			return err
		}
		res, err := mica.AnalyzePhases(b, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d intervals of %d instructions -> %d phases\n\n",
			b.Name(), len(res.Intervals), cfg.IntervalLen, res.K)

		fmt.Println("phase timeline (one symbol per interval):")
		for _, p := range res.Assign {
			fmt.Printf("%c", 'A'+p%26)
		}
		fmt.Println()

		fmt.Println("\nrepresentative simulation points:")
		t := report.NewTable("phase", "interval", "instructions", "weight", "loads", "branches", "ILP-256")
		for _, rep := range res.Representatives {
			iv := res.Intervals[rep.Interval]
			t.AddRow(fmt.Sprintf("%c", 'A'+rep.Phase%26), rep.Interval,
				fmt.Sprintf("%d..%d", iv.Start, iv.Start+iv.Insts),
				fmt.Sprintf("%.3f", rep.Weight),
				fmt.Sprintf("%.3f", res.Vectors.At(rep.Interval, 0)),
				fmt.Sprintf("%.3f", res.Vectors.At(rep.Interval, 2)),
				fmt.Sprintf("%.2f", res.Vectors.At(rep.Interval, 9)))
		}
		fmt.Print(t.String())

		fmt.Printf("\nweighted-vector reconstruction error: %.4f mean abs per characteristic\n",
			res.ReconstructionError())
		return nil

	default:
		return fmt.Errorf("pass -bench <name> or -all")
	}
}
