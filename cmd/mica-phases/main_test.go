package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"mica"
)

// capture redirects stdout during f and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestRunSingleBenchmark(t *testing.T) {
	cfg := mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}
	out, err := capture(t, func() error { return run("SPEC2000/twolf/ref", false, cfg, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"10 intervals of 2000 instructions",
		"phase timeline",
		"representative simulation points",
		"reconstruction error",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSubsetPipeline(t *testing.T) {
	// The -all path over a registry subset is covered by the library
	// tests; here exercise the pipeline rendering through a tiny -all
	// run would profile 122 benchmarks, so only validate flag errors.
	if _, err := capture(t, func() error { return run("", false, mica.PhaseConfig{}, 0) }); err == nil {
		t.Error("missing mode accepted")
	}
	if _, err := capture(t, func() error { return run("no/such/bench", false, mica.PhaseConfig{}, 0) }); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunAllRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes all 122 benchmarks")
	}
	cfg := mica.PhaseConfig{IntervalLen: 1_000, MaxIntervals: 5, MaxK: 3, Seed: 1}
	out, err := capture(t, func() error { return run("", true, cfg, 4) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SPEC2000/mcf/ref", "BioInfoMark/blast/protein", "recon err"} {
		if !strings.Contains(out, want) {
			t.Errorf("registry output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 122 {
		t.Errorf("registry table too short: %d lines", lines)
	}
}
