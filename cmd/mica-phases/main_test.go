package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mica"
)

// capture redirects stdout during f and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestRunSingleBenchmark(t *testing.T) {
	cfg := mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}
	out, err := capture(t, func() error {
		return run(context.Background(), "SPEC2000/twolf/ref", "", false, false, "", mica.StoreOptions{}, cfg, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"10 intervals of 2000 instructions",
		"phase timeline",
		"representative simulation points",
		"reconstruction error",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSubsetPipeline(t *testing.T) {
	// The -all path over a registry subset is covered by the library
	// tests; here exercise the pipeline rendering through a tiny -all
	// run would profile 122 benchmarks, so only validate flag errors.
	if _, err := capture(t, func() error {
		return run(context.Background(), "", "", false, false, "", mica.StoreOptions{}, mica.PhaseConfig{}, 0)
	}); err == nil {
		t.Error("missing mode accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), "no/such/bench", "", false, false, "", mica.StoreOptions{}, mica.PhaseConfig{}, 0)
	}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), "MiBench/sha/large,no/such/bench", "", false, true, "", mica.StoreOptions{}, mica.PhaseConfig{}, 0)
	}); err == nil {
		t.Error("unknown benchmark in joint list accepted")
	}
}

// TestRunJointSubset exercises the -joint mode over an explicit
// benchmark list: the shared vocabulary report must name every
// benchmark, print an occupancy row per benchmark and list
// cross-benchmark representatives.
func TestRunJointSubset(t *testing.T) {
	cfg := mica.PhaseConfig{IntervalLen: 1_000, MaxIntervals: 8, MaxK: 3, Seed: 5}
	names := "MiBench/sha/large, SPEC2000/gzip/program"
	out, err := capture(t, func() error {
		return run(context.Background(), names, "", false, true, "", mica.StoreOptions{}, cfg, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"joint phase space: 2 benchmarks, 16 intervals",
		"per-benchmark occupancy of the shared phases",
		"cross-benchmark representative intervals",
		"MiBench/sha/large",
		"SPEC2000/gzip/program",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("joint output missing %q:\n%s", want, out)
		}
	}
}

// TestRunSingleBenchmarkCache: -cache works in the default
// single-benchmark mode too (a one-benchmark pipeline under the hood),
// and the rerun reports the hit.
func TestRunSingleBenchmarkCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "single.json")
	cfg := mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 6, MaxK: 3, Seed: 1}
	first, err := capture(t, func() error {
		return run(context.Background(), "MiBench/sha/large", "", false, false, cache, mica.StoreOptions{}, cfg, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(first, "profiling skipped") {
		t.Fatal("first run claimed a cache hit")
	}
	second, err := capture(t, func() error {
		return run(context.Background(), "MiBench/sha/large", "", false, false, cache, mica.StoreOptions{}, cfg, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "profiling skipped") {
		t.Errorf("second run did not hit the cache:\n%s", second)
	}
	if !strings.HasSuffix(second, first) {
		t.Error("cached report differs from computed report")
	}
}

// TestRunJointCache pins the cache contract at the CLI level: the
// second invocation with the same configuration reports the cache hit.
func TestRunJointCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "joint.json")
	cfg := mica.PhaseConfig{IntervalLen: 1_000, MaxIntervals: 5, MaxK: 2, Seed: 3}
	if _, err := capture(t, func() error {
		return run(context.Background(), "MiBench/sha/large", "", false, true, cache, mica.StoreOptions{}, cfg, 1)
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run(context.Background(), "MiBench/sha/large", "", false, true, cache, mica.StoreOptions{}, cfg, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "profiling skipped") {
		t.Errorf("second run did not hit the cache:\n%s", out)
	}
}

func TestRunAllRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes all 122 benchmarks")
	}
	cfg := mica.PhaseConfig{IntervalLen: 1_000, MaxIntervals: 5, MaxK: 3, Seed: 1}
	out, err := capture(t, func() error { return run(context.Background(), "", "", true, false, "", mica.StoreOptions{}, cfg, 4) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SPEC2000/mcf/ref", "BioInfoMark/blast/protein", "recon err"} {
		if !strings.Contains(out, want) {
			t.Errorf("registry output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 122 {
		t.Errorf("registry table too short: %d lines", lines)
	}
}

// TestRunAllRegistryCached runs the registry pipeline through the
// cache twice; the rerun must hit it and produce the same table.
func TestRunAllRegistryCached(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes all 122 benchmarks")
	}
	cache := filepath.Join(t.TempDir(), "phases.json")
	cfg := mica.PhaseConfig{IntervalLen: 500, MaxIntervals: 3, MaxK: 2, Seed: 1}
	first, err := capture(t, func() error {
		return run(context.Background(), "", "", true, false, cache, mica.StoreOptions{}, cfg, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := capture(t, func() error {
		return run(context.Background(), "", "", true, false, cache, mica.StoreOptions{}, cfg, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "profiling skipped") {
		t.Error("registry rerun did not hit the cache")
	}
	// The table itself (everything after the cache banner) must match.
	tail := second[strings.Index(second, "benchmark"):]
	if !strings.HasSuffix(first, tail) {
		t.Error("cached registry table differs from computed table")
	}
}

func TestRunReducedSingleBenchmark(t *testing.T) {
	rcfg := mica.ReducedConfig{Phase: mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}}
	out, err := capture(t, func() error {
		return runReduced(context.Background(), "SPEC2000/twolf/ref", false, false, "", rcfg, mica.StoreOptions{}, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"intervals measured in full", "extrapolated whole-run profile", "cost: cheap pass observed"} {
		if !strings.Contains(out, want) {
			t.Errorf("reduced output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReducedSubsetPipeline(t *testing.T) {
	rcfg := mica.ReducedConfig{Phase: mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}}
	out, err := capture(t, func() error {
		return runReduced(context.Background(), "MiBench/sha/large,SPEC2000/gzip/program", false, false, "", rcfg, mica.StoreOptions{}, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MiBench/sha/large", "SPEC2000/gzip/program", "skipped insts"} {
		if !strings.Contains(out, want) {
			t.Errorf("reduced pipeline output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReducedJointWithCache(t *testing.T) {
	rcfg := mica.ReducedConfig{Phase: mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}}
	cache := filepath.Join(t.TempDir(), "joint.json")
	out, err := capture(t, func() error {
		return runReduced(context.Background(), "MiBench/sha/large,SPEC2000/gzip/program", false, true, cache, rcfg, mica.StoreOptions{}, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "joint reduced profile: 2 benchmarks") {
		t.Errorf("joint reduced output wrong:\n%s", out)
	}
	// Second run must reuse the cached vocabulary.
	out, err = capture(t, func() error {
		return runReduced(context.Background(), "MiBench/sha/large,SPEC2000/gzip/program", false, true, cache, rcfg, mica.StoreOptions{}, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cheap pass skipped") {
		t.Errorf("joint rerun did not hit the vocabulary cache:\n%s", out)
	}
}

func TestRunReducedCacheHitLine(t *testing.T) {
	rcfg := mica.ReducedConfig{Phase: mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}}
	cache := filepath.Join(t.TempDir(), "reduced.json")
	if _, err := capture(t, func() error {
		return runReduced(context.Background(), "MiBench/sha/large", false, false, cache, rcfg, mica.StoreOptions{}, 0)
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return runReduced(context.Background(), "MiBench/sha/large", false, false, cache, rcfg, mica.StoreOptions{}, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "full hit from") {
		t.Errorf("reduced rerun did not report the cache hit:\n%s", out)
	}
}

// TestRunJointStore exercises -joint -store end to end: the first run
// characterizes every shard, the incremental rerun reuses them all,
// and both render the same shared-vocabulary report.
func TestRunJointStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cfg := mica.PhaseConfig{IntervalLen: 1_000, MaxIntervals: 8, MaxK: 3, Seed: 5}
	names := "MiBench/sha/large, SPEC2000/gzip/program"
	sopt := mica.StoreOptions{Dir: dir, Incremental: true}
	first, err := capture(t, func() error { return run(context.Background(), names, "", false, true, "", sopt, cfg, 2) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"2 shards characterized, 0 reused",
		"joint phase space: 2 benchmarks, 16 intervals",
		"per-benchmark occupancy of the shared phases",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("store run output missing %q:\n%s", want, first)
		}
	}
	second, err := capture(t, func() error { return run(context.Background(), names, "", false, true, "", sopt, cfg, 2) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "0 shards characterized, 2 reused") {
		t.Errorf("incremental rerun did not reuse shards:\n%s", second)
	}
	// The vocabulary report (everything after the store banner) matches.
	tail := second[strings.Index(second, "joint phase space"):]
	if !strings.HasSuffix(first, tail) {
		t.Error("store-backed rerun renders a different vocabulary")
	}
}

// TestValidateFlags tables the flag matrix: every supported
// combination is accepted and every inconsistent one is rejected with
// an error naming the fix.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		f       cliFlags
		wantErr string // substring; empty = accepted
	}{
		{"single bench", cliFlags{bench: "a/b/c"}, ""},
		{"all", cliFlags{all: true}, ""},
		{"joint", cliFlags{joint: true}, ""},
		{"reduced bench", cliFlags{reduced: true, bench: "a/b/c"}, ""},
		{"reduced all", cliFlags{reduced: true, all: true}, ""},
		{"reduced joint", cliFlags{reduced: true, joint: true}, ""},
		{"joint cache", cliFlags{joint: true, cache: "j.json"}, ""},
		{"reduced cache", cliFlags{reduced: true, all: true, cache: "r.json"}, ""},
		{"joint store", cliFlags{joint: true, storeDir: "d"}, ""},
		{"joint store quant incremental", cliFlags{joint: true, storeDir: "d", quant: true, incremental: true}, ""},
		{"joint store warm", cliFlags{joint: true, storeDir: "d", warm: true}, ""},
		{"joint store cachebytes", cliFlags{joint: true, storeDir: "d", cacheBytes: 1 << 20}, ""},
		{"reduced store", cliFlags{reduced: true, all: true, storeDir: "d"}, ""},
		{"reduced store bench", cliFlags{reduced: true, bench: "a/b/c", storeDir: "d"}, ""},
		{"reduced store cachebytes", cliFlags{reduced: true, all: true, storeDir: "d", cacheBytes: 4096}, ""},
		{"reduced joint store", cliFlags{reduced: true, joint: true, storeDir: "d"}, ""},
		{"reduced joint store warm", cliFlags{reduced: true, joint: true, storeDir: "d", warm: true, incremental: true}, ""},
		{"fsck", cliFlags{fsck: true, storeDir: "d"}, ""},
		{"trace", cliFlags{trace: "x.trc"}, ""},
		{"trace with display name", cliFlags{trace: "x.trc", bench: "a/b/c"}, ""},
		{"fsck repair", cliFlags{fsck: true, repair: true, storeDir: "d"}, ""},

		{"store without pipeline", cliFlags{storeDir: "d"}, "-joint, -reduced, or both"},
		{"store with bench only", cliFlags{storeDir: "d", bench: "a/b/c"}, "-joint, -reduced, or both"},
		{"store with all only", cliFlags{storeDir: "d", all: true}, "-joint, -reduced, or both"},
		{"store and cache", cliFlags{joint: true, storeDir: "d", cache: "j.json"}, "alternative persistence layers"},
		{"quant without store", cliFlags{joint: true, quant: true}, "only apply to -store"},
		{"incremental without store", cliFlags{all: true, incremental: true}, "only apply to -store"},
		{"warm without store", cliFlags{joint: true, warm: true}, "only apply to -store"},
		{"cachebytes without store", cliFlags{joint: true, cacheBytes: 4096}, "only apply to -store"},
		{"warm without joint", cliFlags{reduced: true, all: true, storeDir: "d", warm: true}, "combine it with -joint"},
		{"negative cachebytes", cliFlags{joint: true, storeDir: "d", cacheBytes: -1}, "positive byte budget"},
		{"fsck without store", cliFlags{fsck: true}, "pass -store DIR"},
		{"repair without fsck", cliFlags{repair: true, storeDir: "d"}, "pass -fsck -repair"},
		{"trace with all", cliFlags{trace: "x.trc", all: true}, "-trace"},
		{"trace with joint", cliFlags{trace: "x.trc", joint: true}, "-trace"},
		{"trace with reduced", cliFlags{trace: "x.trc", reduced: true}, "-trace"},
		{"trace with cache", cliFlags{trace: "x.trc", cache: "c.json"}, "drop -cache"},
	}
	for _, tc := range cases {
		err := validateFlags(tc.f)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: rejected: %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: accepted, want error containing %q", tc.name, tc.wantErr)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunReducedStore exercises -reduced -store end to end: the first
// run characterizes every shard and reports the cache accounting, the
// incremental rerun reuses the cheap pass entirely and renders the
// same table.
func TestRunReducedStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	rcfg := mica.ReducedConfig{Phase: mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}}
	sopt := mica.StoreOptions{Dir: dir, Incremental: true, CacheBytes: 1 << 20}
	names := "MiBench/sha/large,SPEC2000/gzip/program"
	first, err := capture(t, func() error {
		return runReduced(context.Background(), names, false, false, "", rcfg, sopt, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"2 shards characterized, 0 reused",
		"decoded-shard cache:",
		"MiBench/sha/large",
		"skipped insts",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("reduced store run output missing %q:\n%s", want, first)
		}
	}
	second, err := capture(t, func() error {
		return runReduced(context.Background(), names, false, false, "", rcfg, sopt, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "0 shards characterized, 2 reused") {
		t.Errorf("incremental reduced rerun did not reuse shards:\n%s", second)
	}
	tail := second[strings.Index(second, "benchmark"):]
	if !strings.HasSuffix(first, tail) {
		t.Error("store-backed reduced rerun renders a different table")
	}
}

// TestRunReducedJointStoreWarm drives -reduced -joint -store -warm end
// to end: the rerun reuses every shard and takes the warm path.
func TestRunReducedJointStoreWarm(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	rcfg := mica.ReducedConfig{Phase: mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}}
	sopt := mica.StoreOptions{Dir: dir, Incremental: true, WarmStart: true}
	names := "MiBench/sha/large,SPEC2000/gzip/program"
	first, err := capture(t, func() error {
		return runReduced(context.Background(), names, false, true, "", rcfg, sopt, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "joint reduced profile: 2 benchmarks") {
		t.Errorf("joint reduced store output wrong:\n%s", first)
	}
	if strings.Contains(first, "warm-started") {
		t.Error("fresh run claimed a warm start")
	}
	second, err := capture(t, func() error {
		return runReduced(context.Background(), names, false, true, "", rcfg, sopt, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "0 shards characterized, 2 reused") {
		t.Errorf("incremental joint reduced rerun did not reuse shards:\n%s", second)
	}
	if !strings.Contains(second, "warm-started") {
		t.Errorf("warm rerun did not report the warm path:\n%s", second)
	}
}

// TestRunFsckRepair drives -fsck and -fsck -repair end to end: a
// clean store verifies, a corrupted shard fails verification with a
// nonzero exit, -repair quarantines it, and the incremental rerun
// re-characterizes exactly the quarantined benchmark.
func TestRunFsckRepair(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cfg := mica.PhaseConfig{IntervalLen: 1_000, MaxIntervals: 8, MaxK: 3, Seed: 5}
	names := "MiBench/sha/large, SPEC2000/gzip/program"
	sopt := mica.StoreOptions{Dir: dir, Incremental: true}
	if _, err := capture(t, func() error { return run(context.Background(), names, "", false, true, "", sopt, cfg, 2) }); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error { return runFsck(dir, false) })
	if err != nil {
		t.Fatalf("clean store failed fsck: %v", err)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("clean store not reported clean:\n%s", out)
	}

	// Flip one byte in the middle of a shard: the CRC check must catch it.
	shards, err := filepath.Glob(filepath.Join(dir, "*.ivs"))
	if err != nil || len(shards) != 2 {
		t.Fatalf("store has %d shards (%v), want 2", len(shards), err)
	}
	raw, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(shards[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	out, err = capture(t, func() error { return runFsck(dir, false) })
	if err == nil {
		t.Fatalf("corrupted store passed fsck:\n%s", out)
	}
	if !strings.Contains(out, "bad shard") {
		t.Errorf("fsck did not name the bad shard:\n%s", out)
	}

	out, err = capture(t, func() error { return runFsck(dir, true) })
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	if !strings.Contains(out, "quarantined") || !strings.Contains(out, "-incremental") {
		t.Errorf("repair output missing quarantine/resume hint:\n%s", out)
	}

	rerun, err := capture(t, func() error { return run(context.Background(), names, "", false, true, "", sopt, cfg, 2) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rerun, "1 shards characterized, 1 reused") {
		t.Errorf("post-repair rerun did not re-characterize exactly the quarantined benchmark:\n%s", rerun)
	}
}

// TestRunTraceReplay: -trace analyzes a recorded file and reproduces
// the live benchmark's phase analysis exactly (same timeline, same
// representatives), differing only in the displayed name.
func TestRunTraceReplay(t *testing.T) {
	cfg := mica.PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 4, Seed: 1}
	bench := "SPEC2000/twolf/ref"
	b, err := mica.BenchmarkByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	trc := filepath.Join(t.TempDir(), "twolf.trc")
	if _, err := mica.RecordTrace(b, trc, cfg.IntervalLen*uint64(cfg.MaxIntervals)); err != nil {
		t.Fatal(err)
	}
	live, err := capture(t, func() error {
		return run(context.Background(), bench, "", false, false, "", mica.StoreOptions{}, cfg, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := capture(t, func() error {
		return run(context.Background(), "", trc, false, false, "", mica.StoreOptions{}, cfg, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything after the first line (which names the benchmark) must
	// match byte for byte: timeline, representatives, reconstruction.
	liveBody := live[strings.Index(live, "\n"):]
	replayBody := replay[strings.Index(replay, "\n"):]
	if replayBody != liveBody {
		t.Errorf("trace replay diverges from live analysis:\nlive:\n%s\nreplay:\n%s", live, replay)
	}
}
