package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mica"
)

func smallResults(t *testing.T) string {
	t.Helper()
	var bs []mica.Benchmark
	for i, b := range mica.Benchmarks() {
		if i%10 == 0 {
			bs = append(bs, b)
		}
	}
	cfg := mica.DefaultConfig()
	cfg.InstBudget = 5_000
	res, err := mica.ProfileBenchmarks(bs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	if err := mica.SaveResults(path, cfg.InstBudget, res); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelectFromCache(t *testing.T) {
	cache := smallResults(t)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := run(5_000, cache, 7)
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"genetic algorithm", "correlation elimination", "PCA baseline", "rho"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
