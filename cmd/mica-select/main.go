// Command mica-select runs the paper's two key-characteristic selection
// methods — correlation elimination (Section V-A) and the genetic
// algorithm (Section V-B) — and reports the retained characteristics,
// their distance correlation against the full 47-D space (Figure 5), and
// the Table IV subset.
//
// Usage:
//
//	mica-select -results cache.json
//	mica-select -budget 100000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"mica"
	"mica/internal/obs"
	"mica/internal/report"
)

func main() {
	var (
		budget  = flag.Uint64("budget", 300_000, "dynamic instruction budget per benchmark")
		results = flag.String("results", "", "JSON results cache")
		seed    = flag.Int64("seed", 2006, "GA seed")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Build())
		return
	}
	if err := run(*budget, *results, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mica-select:", err)
		os.Exit(1)
	}
}

func run(budget uint64, resultsPath string, seed int64) error {
	var results []mica.ProfileResult
	var err error
	if resultsPath != "" {
		results, _, err = mica.LoadResults(resultsPath)
	}
	if results == nil {
		cfg := mica.DefaultConfig()
		cfg.InstBudget = budget
		cfg.Progress = func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-60s", done, total, name)
		}
		results, err = mica.ProfileAll(cfg)
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	s := mica.NewSpace(results)
	ga := s.GASelect(seed)
	ce := s.CorrelationElimination()
	curve := s.CECurve()

	fmt.Printf("genetic algorithm: %d characteristics, rho = %.3f, fitness = %.3f\n\n",
		len(ga.Selected), ga.Rho, ga.Fitness)
	t := report.NewTable("#", "characteristic", "category")
	for i, c := range ga.Selected {
		t.AddRow(i+1, mica.CharName(c), mica.CharCategory(c))
	}
	fmt.Print(t.String())

	fmt.Printf("\ncorrelation elimination (Figure 5 series):\n")
	ct := report.NewTable("retained", "rho", "retained characteristics (small sizes)")
	for _, k := range []int{47, 32, 24, 17, 12, 8, 7, 4, 2, 1} {
		names := ""
		if k <= 8 {
			for i, c := range ce.Retained(k) {
				if i > 0 {
					names += ", "
				}
				names += mica.CharName(c)
			}
		}
		ct.AddRow(k, curve[k-1], names)
	}
	fmt.Print(ct.String())

	fmt.Printf("\nGA rho %.3f at size %d vs CE rho %.3f at the same size\n",
		ga.Rho, len(ga.Selected), curve[len(ga.Selected)-1])

	// PCA baseline (Section V-C): dimensions needed for 90%% variance.
	p := s.PCA()
	fmt.Printf("PCA baseline: %d components explain 90%% of variance (but require measuring all %d characteristics)\n",
		p.ComponentsNeeded(0.9), mica.NumChars)
	return nil
}
