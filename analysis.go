package mica

// AnalysisConfig parameterizes the full-paper analysis.
type AnalysisConfig struct {
	// ThresholdFraction is the similar/dissimilar distance threshold as
	// a fraction of the maximum observed distance (paper: 0.20).
	ThresholdFraction float64
	// GASeed seeds the genetic algorithm.
	GASeed int64
	// CESizes are the correlation-elimination subset sizes evaluated on
	// the ROC (the paper reports 17, 12 and 7 retained metrics).
	CESizes []int
	// ClusterMaxK bounds the Figure 6 K sweep (paper: 70).
	ClusterMaxK int
	// ClusterSeed seeds k-means.
	ClusterSeed int64
}

// DefaultAnalysisConfig returns the paper's analysis parameters.
func DefaultAnalysisConfig() AnalysisConfig {
	return AnalysisConfig{
		ThresholdFraction: DefaultThresholdFraction,
		GASeed:            2006,
		CESizes:           []int{17, 12, 7},
		ClusterMaxK:       70,
		ClusterSeed:       2006,
	}
}

func (c AnalysisConfig) withDefaults() AnalysisConfig {
	if c.ThresholdFraction == 0 {
		c.ThresholdFraction = DefaultThresholdFraction
	}
	if c.CESizes == nil {
		c.CESizes = []int{17, 12, 7}
	}
	if c.ClusterMaxK == 0 {
		c.ClusterMaxK = 70
	}
	return c
}

// Analysis bundles every statistic the paper's evaluation section
// reports.
type Analysis struct {
	Space *Space

	// Rho is Figure 1's HPC-vs-µarch-independent distance correlation.
	Rho float64
	// Tuples is Table III's quadrant classification.
	Tuples Quadrants

	// GA is the Table IV genetic-algorithm selection.
	GA GAResult
	// CE is the correlation-elimination result.
	CE CEResult
	// CECurve is Figure 5's CE series (rho at every retained size).
	CECurve []float64

	// AUCAll, AUCGA and AUCCE are Figure 4's areas under the ROC curves
	// for all 47 characteristics, the GA subset, and each configured CE
	// subset size.
	AUCAll float64
	AUCGA  float64
	AUCCE  map[int]float64

	// Clusters is Figure 6's BIC-selected k-means clustering in the
	// GA-selected key-characteristic space.
	Clusters ClusterSelection

	// Config echoes the analysis parameters used.
	Config AnalysisConfig
}

// Analyze runs the complete evaluation pipeline of Sections IV-VI on
// profiled benchmarks.
func Analyze(results []ProfileResult, cfg AnalysisConfig) *Analysis {
	cfg = cfg.withDefaults()
	s := NewSpace(results)
	a := &Analysis{Space: s, Config: cfg}

	// Section IV: the pitfall.
	a.Rho = s.DistanceCorrelation()
	a.Tuples = s.ClassifyTuples(cfg.ThresholdFraction)

	// Section V: key characteristic selection.
	a.GA = s.GASelect(cfg.GASeed)
	a.CE = s.CorrelationElimination()
	a.CECurve = s.CECurve()

	a.AUCAll = AUC(s.ROCCurve(nil, cfg.ThresholdFraction))
	a.AUCGA = AUC(s.ROCCurve(a.GA.Selected, cfg.ThresholdFraction))
	a.AUCCE = make(map[int]float64, len(cfg.CESizes))
	for _, k := range cfg.CESizes {
		a.AUCCE[k] = AUC(s.ROCCurve(a.CE.Retained(k), cfg.ThresholdFraction))
	}

	// Section VI: clustering in the key-characteristic space.
	a.Clusters = s.Cluster(a.GA.Selected, cfg.ClusterMaxK, cfg.ClusterSeed)
	return a
}
