package mica

import (
	"fmt"

	"mica/internal/predict"
)

// PredictionEval summarizes a leave-one-out performance-prediction
// experiment (extension, after the paper's companion PACT 2006 work):
// each benchmark's machine-model IPC is predicted from its nearest
// neighbours in a characteristic subspace.
type PredictionEval = predict.Evaluation

// PredictIPC runs leave-one-out k-nearest-neighbour prediction of the
// given HPC metric (e.g. HPC metric index 0 = EV56 IPC) from the
// selected characteristic columns of the normalized workload space (nil
// = all 47). A high rank correlation means the (reduced) inherent
// characterization still orders benchmarks by machine performance —
// the end-to-end payoff of key-characteristic selection.
func (s *Space) PredictIPC(cols []int, hpcMetric, k int) (PredictionEval, error) {
	if hpcMetric < 0 || hpcMetric >= NumHPCMetrics {
		return PredictionEval{}, fmt.Errorf("mica: HPC metric %d out of range", hpcMetric)
	}
	feats := s.NormChars
	if cols != nil {
		feats = feats.SelectColumns(cols)
	}
	return predict.LeaveOneOut(feats, s.HPC.Column(hpcMetric), k)
}
