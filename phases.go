package mica

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/pool"
	"mica/internal/trace"
)

// Phase-analysis re-exports: interval-based phase classification, the
// extension the paper's related-work section connects to SimPoint-style
// reduced simulation.
type (
	// PhaseConfig parameterizes AnalyzePhases.
	PhaseConfig = phases.Config
	// PhaseResult is a benchmark's phase decomposition.
	PhaseResult = phases.Result
	// PhaseInterval is one characterized trace interval.
	PhaseInterval = phases.Interval
	// PhaseRepresentative is one phase's weighted simulation point.
	PhaseRepresentative = phases.Representative
	// PhaseJointResult is a shared cross-benchmark phase vocabulary:
	// many benchmarks' intervals clustered once in one space.
	PhaseJointResult = phases.JointResult
	// PhaseRowRef is the provenance of one joint-matrix row.
	PhaseRowRef = phases.RowRef
	// PhaseJointRepresentative is one shared phase's weighted
	// cross-benchmark simulation point.
	PhaseJointRepresentative = phases.JointRepresentative
)

// AnalyzePhases splits one benchmark's execution into fixed-length
// intervals, characterizes each with the Table II metrics as the VM
// runs (streaming: one profiler reused across all intervals), clusters
// the intervals into phases (k-means + BIC) and selects one weighted
// representative interval per phase.
func AnalyzePhases(b Benchmark, cfg PhaseConfig) (*PhaseResult, error) {
	m, err := b.Source()
	if err != nil {
		return nil, err
	}
	// Only zero fields default: the zero Options value already means
	// "all 47 characteristics, memory dependencies tracked, default PPM
	// order", so a caller's Subset, NoMemDeps or explicit PPMOrder is
	// honored rather than clobbered.
	return phases.Analyze(m, cfg)
}

// PhasePipelineConfig parameterizes the registry-wide phase pipeline.
type PhasePipelineConfig struct {
	// Phase is the per-benchmark phase-analysis configuration.
	Phase PhaseConfig
	// Workers bounds pipeline parallelism (default: GOMAXPROCS). Each
	// worker owns one profiler whose analyzer tables are pooled across
	// every benchmark that worker processes.
	Workers int
	// Progress, when non-nil, is called after each benchmark completes.
	Progress func(done, total int, name string)
}

// BenchmarkPhases is one benchmark's phase decomposition in a
// registry-wide pipeline run.
type BenchmarkPhases struct {
	Benchmark Benchmark
	Result    *PhaseResult
}

// AnalyzePhasesAll runs phase analysis over every benchmark in the
// registry, sharded over a fixed worker pool, with results in Table I
// order. Each worker pools one profiler across all the benchmarks it
// processes (Reset between intervals and between benchmarks), so
// analyzer tables are built once per worker rather than once per
// interval; results are bit-identical to analyzing each benchmark in
// isolation.
func AnalyzePhasesAll(cfg PhasePipelineConfig) ([]BenchmarkPhases, error) {
	return AnalyzePhasesBenchmarks(Benchmarks(), cfg)
}

// AnalyzePhasesBenchmarks is AnalyzePhasesAll over an explicit
// benchmark list, returning results in input order. On any failure it
// returns nil results and an error naming every failed benchmark;
// AnalyzePhasesBenchmarksCtx is the fault-tolerant form that also
// returns the partial results.
func AnalyzePhasesBenchmarks(bs []Benchmark, cfg PhasePipelineConfig) ([]BenchmarkPhases, error) {
	results, err := AnalyzePhasesBenchmarksCtx(context.Background(), bs, cfg)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// AnalyzePhasesBenchmarksCtx is AnalyzePhasesBenchmarks with
// cancellation and per-benchmark fault isolation: a failing or
// panicking benchmark is reported — wrapped with its name, all
// failures joined into the returned error — while the others complete.
// results[i].Result is non-nil exactly when bs[i] succeeded; failed or
// never-dispatched (cancelled) entries carry a nil Result. Cancelling
// ctx stops dispatching new benchmarks, drains in-flight ones, and
// folds ctx.Err() into the returned error.
func AnalyzePhasesBenchmarksCtx(ctx context.Context, bs []Benchmark, cfg PhasePipelineConfig) ([]BenchmarkPhases, error) {
	results := make([]BenchmarkPhases, len(bs))
	for i := range results {
		results[i].Benchmark = bs[i]
	}
	err := phasePipelineCtx(ctx, bs, cfg, "phase analysis of", func(m trace.Source, prof *micachar.Profiler, i int) error {
		res, err := phases.AnalyzeWith(m, prof, cfg.Phase)
		if err != nil {
			return err
		}
		results[i].Result = res
		return nil
	})
	return results, err
}

// phasePipeline is the legacy non-cancellable front half shared by the
// phase pipelines; it delegates to phasePipelineCtx with a background
// context, so its only observable difference from the old code is
// that every failing benchmark is reported (joined), not just the
// first, and a panicking benchmark surfaces as an error instead of
// crashing the process.
func phasePipeline(bs []Benchmark, cfg PhasePipelineConfig, what string,
	analyze func(m trace.Source, prof *micachar.Profiler, i int) error) error {
	return phasePipelineCtx(context.Background(), bs, cfg, what, analyze)
}

// phasePipelineCtx is the shared sharded front half of every phase
// pipeline: it instantiates each benchmark on a fixed worker pool, one
// pooled profiler per worker (built once, Reset between intervals and
// benchmarks by the callee), and calls analyze for each. Failures
// follow the pool's error contract — isolation (one bad benchmark
// never stops the others), attribution (every failure, panics
// included, is wrapped with the failing benchmark's name via
// namePoolErrors), collection (all failures joined), and prompt
// cancellation with in-flight drain. Both the per-benchmark and joint
// pipelines run through it, so pooling/progress/fault fixes land in
// one place. what reads like "phase analysis of" — it is spliced
// between "mica:" and the benchmark name.
func phasePipelineCtx(ctx context.Context, bs []Benchmark, cfg PhasePipelineConfig, what string,
	analyze func(m trace.Source, prof *micachar.Profiler, i int) error) error {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(bs) {
		workers = len(bs)
	}
	profs := make([]*micachar.Profiler, workers)
	var done int
	var mu sync.Mutex

	err := pool.RunCtx(ctx, len(bs), workers, func(_ context.Context, worker, i int) error {
		m, err := bs[i].Source()
		if err != nil {
			return err
		}
		if profs[worker] == nil {
			profs[worker] = micachar.NewProfiler(cfg.Phase.Options)
		}
		if err := analyze(m, profs[worker], i); err != nil {
			return err
		}
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(bs), bs[i].Name())
			mu.Unlock()
		}
		return nil
	})
	return namePoolErrors(err, what, func(i int) string { return bs[i].Name() })
}

// AnalyzePhasesJoint builds a shared cross-benchmark phase vocabulary:
// every benchmark's intervals are characterized by the sharded pooled
// pipeline (one profiler per worker, Reset between intervals and
// benchmarks — no per-benchmark clustering), then ALL intervals are
// concatenated into one provenance-indexed matrix and clustered once.
// The result reports per-benchmark occupancy of the shared phases and
// cross-benchmark representative intervals. On a single benchmark it
// is bit-identical to AnalyzePhases.
func AnalyzePhasesJoint(bs []Benchmark, cfg PhasePipelineConfig) (*PhaseJointResult, error) {
	return AnalyzePhasesJointCtx(context.Background(), bs, cfg)
}

// AnalyzePhasesJointCtx is AnalyzePhasesJoint with cancellation and
// full error collection. A joint vocabulary built from a silently
// shrunken benchmark set would be a different vocabulary, so any
// characterization failure (or cancellation) is fatal to the joint
// result — but every failing benchmark is still isolated, named and
// reported in one joined error rather than crashing the pipeline or
// stopping at the first failure. The store-backed form
// (AnalyzePhasesJointStoreCtx) is the one that commits partial work.
func AnalyzePhasesJointCtx(ctx context.Context, bs []Benchmark, cfg PhasePipelineConfig) (*PhaseJointResult, error) {
	named, err := characterizeBenchmarksCtx(ctx, bs, cfg)
	if err != nil {
		return nil, err
	}
	return phases.AnalyzeJoint(named, cfg.Phase)
}

// characterizeBenchmarksCtx is the profiling front half of the joint
// pipeline: interval characterization for every benchmark, sharded
// over the fixed worker pool, clustering skipped. On any failure the
// named slice is nil — the joint paths never consume partial sets
// implicitly.
func characterizeBenchmarksCtx(ctx context.Context, bs []Benchmark, cfg PhasePipelineConfig) ([]phases.BenchmarkIntervals, error) {
	named := make([]phases.BenchmarkIntervals, len(bs))
	err := phasePipelineCtx(ctx, bs, cfg, "characterization of", func(m trace.Source, prof *micachar.Profiler, i int) error {
		res, err := phases.CharacterizeWith(m, prof, cfg.Phase)
		if err != nil {
			return err
		}
		named[i] = phases.BenchmarkIntervals{Name: bs[i].Name(), Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return named, nil
}

// Reduced (phase-aware) profiling re-exports: the SimPoint-style
// two-pass pipeline that pays the full 47-characteristic + EV56/EV67
// characterization only on per-phase representative intervals.
type (
	// ReducedConfig parameterizes reduced profiling.
	ReducedConfig = phases.ReducedConfig
	// ReducedResult is one benchmark's reduced profile: the cheap-pass
	// phase decomposition, the fully measured representatives, and the
	// extrapolated whole-run vectors.
	ReducedResult = phases.ReducedResult
	// PhaseExactProfile is the matched-grid full profile the reduced
	// extrapolation is evaluated (and the tracked speedup measured)
	// against.
	PhaseExactProfile = phases.ExactProfile
	// PhaseJointReduced is a joint-vocabulary reduction: shared
	// representatives measured once, every member benchmark
	// extrapolated from them.
	PhaseJointReduced = phases.JointReduced
)

// KeyCharacteristics returns the paper's 8 GA-selected key
// characteristics (Table IV) — the default cheap-pass subset of the
// reduced pipeline.
func KeyCharacteristics() []int { return phases.KeyCharacteristics() }

// KeySubset returns KeyCharacteristics as an Options.Subset mask.
func KeySubset() []bool { return phases.KeySubset() }

// AnalyzeReduced runs two-pass reduced profiling on one benchmark: a
// cheap sampled pass measuring only cfg.Subset (default: the paper's 8
// key characteristics) positions every interval in the phase space,
// the intervals are clustered, and a replay pass pays the full
// 47-characteristic + HPC measurement only on the per-phase
// representative intervals, extrapolating whole-run vectors as
// phase-weighted sums.
func AnalyzeReduced(b Benchmark, cfg ReducedConfig) (*ReducedResult, error) {
	cheap, err := b.Source()
	if err != nil {
		return nil, err
	}
	replay, err := b.Source()
	if err != nil {
		return nil, err
	}
	rr, err := phases.AnalyzeReduced(cheap, replay, cfg)
	if err != nil {
		return nil, fmt.Errorf("mica: reduced profiling of %s: %w", b.Name(), err)
	}
	return rr, nil
}

// ProfileReduced is the reduced counterpart of Profile: it measures one
// benchmark with the two-pass pipeline and returns the extrapolated
// whole-run vectors as a ProfileResult, so the entire analysis stack
// (NewSpace, Analyze, the figure renderers) runs unchanged on reduced
// profiles.
func ProfileReduced(b Benchmark, cfg ReducedConfig) (ProfileResult, error) {
	rr, err := AnalyzeReduced(b, cfg)
	if err != nil {
		return ProfileResult{}, err
	}
	return ProfileResult{Benchmark: b, Chars: rr.Chars, HPC: rr.HPC, Insts: rr.TotalInsts()}, nil
}

// ProfileExact measures the exact matched-grid full profile of one
// benchmark: the same interval grid as AnalyzeReduced, with the full
// characterization paid on every interval. It is the differential
// oracle reduced extrapolations are scored against and the cost
// baseline of the tracked `mica-bench -reduced` speedup.
func ProfileExact(b Benchmark, cfg ReducedConfig) (*PhaseExactProfile, error) {
	m, err := b.Source()
	if err != nil {
		return nil, err
	}
	ex, err := phases.CharacterizeExact(m, cfg)
	if err != nil {
		return nil, fmt.Errorf("mica: exact grid profiling of %s: %w", b.Name(), err)
	}
	return ex, nil
}

// ReducedPipelineConfig parameterizes the registry-wide reduced
// pipelines.
type ReducedPipelineConfig struct {
	// Reduced is the per-benchmark reduced-profiling configuration.
	Reduced ReducedConfig
	// Workers bounds pipeline parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after each benchmark completes.
	Progress func(done, total int, name string)
}

// BenchmarkReduced is one benchmark's reduced profile in a
// registry-wide pipeline run.
type BenchmarkReduced struct {
	Benchmark Benchmark
	Result    *ReducedResult
}

// AnalyzeReducedBenchmarks runs reduced profiling over a benchmark
// list, sharded over the fixed worker pool. Each worker pools one
// cheap-pass and one full-pass profiler across all the benchmarks it
// processes (Reset between intervals and benchmarks), so analyzer
// tables are built twice per worker rather than twice per benchmark.
// Results are in input order. On any failure it returns nil results
// and an error naming every failed benchmark;
// AnalyzeReducedBenchmarksCtx is the fault-tolerant form that also
// returns the partial results.
func AnalyzeReducedBenchmarks(bs []Benchmark, cfg ReducedPipelineConfig) ([]BenchmarkReduced, error) {
	results, err := AnalyzeReducedBenchmarksCtx(context.Background(), bs, cfg)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// AnalyzeReducedBenchmarksCtx is AnalyzeReducedBenchmarks with
// cancellation and per-benchmark fault isolation: a failing or
// panicking benchmark is reported — wrapped with its name, all
// failures joined into the returned error — while the others complete.
// results[i].Result is non-nil exactly when bs[i] succeeded.
// Cancelling ctx stops dispatching new benchmarks, drains in-flight
// ones, and folds ctx.Err() into the returned error.
func AnalyzeReducedBenchmarksCtx(ctx context.Context, bs []Benchmark, cfg ReducedPipelineConfig) ([]BenchmarkReduced, error) {
	rcfg := cfg.Reduced.WithDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(bs) {
		workers = len(bs)
	}
	results := make([]BenchmarkReduced, len(bs))
	for i := range results {
		results[i].Benchmark = bs[i]
	}
	cheapProfs := make([]*micachar.Profiler, workers)
	fullProfs := make([]*micachar.Profiler, workers)
	var done int
	var mu sync.Mutex

	err := pool.RunCtx(ctx, len(bs), workers, func(_ context.Context, worker, i int) error {
		cheap, err := bs[i].Source()
		if err != nil {
			return err
		}
		replay, err := bs[i].Source()
		if err != nil {
			return err
		}
		if cheapProfs[worker] == nil {
			cheapProfs[worker] = micachar.NewProfiler(rcfg.CheapConfig().Options)
			fullProfs[worker] = micachar.NewProfiler(rcfg.FullOptions)
		}
		res, err := phases.AnalyzeReducedWith(cheap, replay, cheapProfs[worker], fullProfs[worker], rcfg)
		if err != nil {
			return err
		}
		results[i].Result = res
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(bs), bs[i].Name())
			mu.Unlock()
		}
		return nil
	})
	return results, namePoolErrors(err, "reduced profiling of", func(i int) string { return bs[i].Name() })
}

// AnalyzeReducedJoint runs joint-vocabulary-driven reduction: every
// benchmark's intervals are characterized by the cheap sampled pass
// (sharded, pooled), ALL intervals are clustered once into a shared
// phase vocabulary, and only the shared representative intervals are
// measured fully — each benchmark's whole-run vectors are extrapolated
// from the shared measurements weighted by its occupancy row. This is
// the cross-benchmark redundancy payoff: K full interval measurements
// for the whole set instead of K per benchmark.
func AnalyzeReducedJoint(bs []Benchmark, cfg ReducedPipelineConfig) (*PhaseJointReduced, error) {
	return AnalyzeReducedJointCtx(context.Background(), bs, cfg)
}

// AnalyzeReducedJointCtx is AnalyzeReducedJoint with cancellation and
// full error collection. Like AnalyzePhasesJointCtx, a
// characterization failure is fatal to the joint result (the shared
// vocabulary must cover the requested set), but every failing
// benchmark is isolated, named and reported in one joined error.
func AnalyzeReducedJointCtx(ctx context.Context, bs []Benchmark, cfg ReducedPipelineConfig) (*PhaseJointReduced, error) {
	rcfg := cfg.Reduced.WithDefaults()
	named := make([]phases.BenchmarkIntervals, len(bs))
	pcfg := PhasePipelineConfig{Phase: rcfg.CheapConfig(), Workers: cfg.Workers, Progress: cfg.Progress}
	err := phasePipelineCtx(ctx, bs, pcfg, "reduced characterization of", func(m trace.Source, prof *micachar.Profiler, i int) error {
		res, err := phases.CharacterizeReducedWith(m, prof, rcfg)
		if err != nil {
			return err
		}
		named[i] = phases.BenchmarkIntervals{Name: bs[i].Name(), Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	j, err := phases.AnalyzeJoint(named, rcfg.CheapConfig())
	if err != nil {
		return nil, err
	}
	jr, err := phases.ReplayJoint(j, func(bi int) (trace.Source, error) {
		return bs[bi].Source()
	}, rcfg)
	if err != nil {
		return nil, fmt.Errorf("mica: joint reduced replay: %w", err)
	}
	return jr, nil
}
