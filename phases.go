package mica

import (
	"fmt"
	"runtime"
	"sync"

	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/pool"
	"mica/internal/vm"
)

// Phase-analysis re-exports: interval-based phase classification, the
// extension the paper's related-work section connects to SimPoint-style
// reduced simulation.
type (
	// PhaseConfig parameterizes AnalyzePhases.
	PhaseConfig = phases.Config
	// PhaseResult is a benchmark's phase decomposition.
	PhaseResult = phases.Result
	// PhaseInterval is one characterized trace interval.
	PhaseInterval = phases.Interval
	// PhaseRepresentative is one phase's weighted simulation point.
	PhaseRepresentative = phases.Representative
	// PhaseJointResult is a shared cross-benchmark phase vocabulary:
	// many benchmarks' intervals clustered once in one space.
	PhaseJointResult = phases.JointResult
	// PhaseRowRef is the provenance of one joint-matrix row.
	PhaseRowRef = phases.RowRef
	// PhaseJointRepresentative is one shared phase's weighted
	// cross-benchmark simulation point.
	PhaseJointRepresentative = phases.JointRepresentative
)

// AnalyzePhases splits one benchmark's execution into fixed-length
// intervals, characterizes each with the Table II metrics as the VM
// runs (streaming: one profiler reused across all intervals), clusters
// the intervals into phases (k-means + BIC) and selects one weighted
// representative interval per phase.
func AnalyzePhases(b Benchmark, cfg PhaseConfig) (*PhaseResult, error) {
	m, err := b.Instantiate()
	if err != nil {
		return nil, err
	}
	// Only zero fields default: the zero Options value already means
	// "all 47 characteristics, memory dependencies tracked, default PPM
	// order", so a caller's Subset, NoMemDeps or explicit PPMOrder is
	// honored rather than clobbered.
	return phases.Analyze(m, cfg)
}

// PhasePipelineConfig parameterizes the registry-wide phase pipeline.
type PhasePipelineConfig struct {
	// Phase is the per-benchmark phase-analysis configuration.
	Phase PhaseConfig
	// Workers bounds pipeline parallelism (default: GOMAXPROCS). Each
	// worker owns one profiler whose analyzer tables are pooled across
	// every benchmark that worker processes.
	Workers int
	// Progress, when non-nil, is called after each benchmark completes.
	Progress func(done, total int, name string)
}

// BenchmarkPhases is one benchmark's phase decomposition in a
// registry-wide pipeline run.
type BenchmarkPhases struct {
	Benchmark Benchmark
	Result    *PhaseResult
}

// AnalyzePhasesAll runs phase analysis over every benchmark in the
// registry, sharded over a fixed worker pool, with results in Table I
// order. Each worker pools one profiler across all the benchmarks it
// processes (Reset between intervals and between benchmarks), so
// analyzer tables are built once per worker rather than once per
// interval; results are bit-identical to analyzing each benchmark in
// isolation.
func AnalyzePhasesAll(cfg PhasePipelineConfig) ([]BenchmarkPhases, error) {
	return AnalyzePhasesBenchmarks(Benchmarks(), cfg)
}

// AnalyzePhasesBenchmarks is AnalyzePhasesAll over an explicit
// benchmark list, returning results in input order.
func AnalyzePhasesBenchmarks(bs []Benchmark, cfg PhasePipelineConfig) ([]BenchmarkPhases, error) {
	results := make([]BenchmarkPhases, len(bs))
	err := phasePipeline(bs, cfg, "phase analysis", func(m *vm.Machine, prof *micachar.Profiler, i int) error {
		res, err := phases.AnalyzeWith(m, prof, cfg.Phase)
		results[i] = BenchmarkPhases{Benchmark: bs[i], Result: res}
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// phasePipeline is the shared sharded front half of every phase
// pipeline: it instantiates each benchmark on a fixed worker pool, one
// pooled profiler per worker (built once, Reset between intervals and
// benchmarks by the callee), calls analyze for each, and joins errors
// with the failing benchmark's name. Both the per-benchmark and joint
// pipelines run through it, so pooling/progress fixes land in one
// place.
func phasePipeline(bs []Benchmark, cfg PhasePipelineConfig, what string,
	analyze func(m *vm.Machine, prof *micachar.Profiler, i int) error) error {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, len(bs))
	profs := make([]*micachar.Profiler, workers)
	var done int
	var mu sync.Mutex

	pool.Run(len(bs), workers, func(worker, i int) {
		m, err := bs[i].Instantiate()
		if err != nil {
			errs[i] = err
			return
		}
		if profs[worker] == nil {
			profs[worker] = micachar.NewProfiler(cfg.Phase.Options)
		}
		errs[i] = analyze(m, profs[worker], i)
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(bs), bs[i].Name())
			mu.Unlock()
		}
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("mica: %s of %s: %w", what, bs[i].Name(), err)
		}
	}
	return nil
}

// AnalyzePhasesJoint builds a shared cross-benchmark phase vocabulary:
// every benchmark's intervals are characterized by the sharded pooled
// pipeline (one profiler per worker, Reset between intervals and
// benchmarks — no per-benchmark clustering), then ALL intervals are
// concatenated into one provenance-indexed matrix and clustered once.
// The result reports per-benchmark occupancy of the shared phases and
// cross-benchmark representative intervals. On a single benchmark it
// is bit-identical to AnalyzePhases.
func AnalyzePhasesJoint(bs []Benchmark, cfg PhasePipelineConfig) (*PhaseJointResult, error) {
	named, err := characterizeBenchmarks(bs, cfg)
	if err != nil {
		return nil, err
	}
	return phases.AnalyzeJoint(named, cfg.Phase)
}

// characterizeBenchmarks is the profiling front half of the joint
// pipeline: interval characterization for every benchmark, sharded
// over the fixed worker pool, clustering skipped.
func characterizeBenchmarks(bs []Benchmark, cfg PhasePipelineConfig) ([]phases.BenchmarkIntervals, error) {
	named := make([]phases.BenchmarkIntervals, len(bs))
	err := phasePipeline(bs, cfg, "characterization", func(m *vm.Machine, prof *micachar.Profiler, i int) error {
		res, err := phases.CharacterizeWith(m, prof, cfg.Phase)
		named[i] = phases.BenchmarkIntervals{Name: bs[i].Name(), Result: res}
		return err
	})
	if err != nil {
		return nil, err
	}
	return named, nil
}
