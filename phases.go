package mica

import (
	micachar "mica/internal/mica"
	"mica/internal/phases"
)

// Phase-analysis re-exports: interval-based phase classification, the
// extension the paper's related-work section connects to SimPoint-style
// reduced simulation.
type (
	// PhaseConfig parameterizes AnalyzePhases.
	PhaseConfig = phases.Config
	// PhaseResult is a benchmark's phase decomposition.
	PhaseResult = phases.Result
	// PhaseInterval is one characterized trace interval.
	PhaseInterval = phases.Interval
	// PhaseRepresentative is one phase's weighted simulation point.
	PhaseRepresentative = phases.Representative
)

// AnalyzePhases splits one benchmark's execution into fixed-length
// intervals, characterizes each with the Table II metrics, clusters the
// intervals into phases (k-means + BIC) and selects one weighted
// representative interval per phase.
func AnalyzePhases(b Benchmark, cfg PhaseConfig) (*PhaseResult, error) {
	m, err := b.Instantiate()
	if err != nil {
		return nil, err
	}
	if cfg.Options.PPMOrder == 0 {
		cfg.Options = micachar.Options{TrackMemDeps: true, PPMOrder: micachar.DefaultPPMOrder}
	}
	return phases.Analyze(m, cfg)
}
