package mica

import (
	"fmt"
	"runtime"
	"sync"

	micachar "mica/internal/mica"
	"mica/internal/phases"
)

// Phase-analysis re-exports: interval-based phase classification, the
// extension the paper's related-work section connects to SimPoint-style
// reduced simulation.
type (
	// PhaseConfig parameterizes AnalyzePhases.
	PhaseConfig = phases.Config
	// PhaseResult is a benchmark's phase decomposition.
	PhaseResult = phases.Result
	// PhaseInterval is one characterized trace interval.
	PhaseInterval = phases.Interval
	// PhaseRepresentative is one phase's weighted simulation point.
	PhaseRepresentative = phases.Representative
)

// AnalyzePhases splits one benchmark's execution into fixed-length
// intervals, characterizes each with the Table II metrics as the VM
// runs (streaming: one profiler reused across all intervals), clusters
// the intervals into phases (k-means + BIC) and selects one weighted
// representative interval per phase.
func AnalyzePhases(b Benchmark, cfg PhaseConfig) (*PhaseResult, error) {
	m, err := b.Instantiate()
	if err != nil {
		return nil, err
	}
	// Only zero fields default: the zero Options value already means
	// "all 47 characteristics, memory dependencies tracked, default PPM
	// order", so a caller's Subset, NoMemDeps or explicit PPMOrder is
	// honored rather than clobbered.
	return phases.Analyze(m, cfg)
}

// PhasePipelineConfig parameterizes the registry-wide phase pipeline.
type PhasePipelineConfig struct {
	// Phase is the per-benchmark phase-analysis configuration.
	Phase PhaseConfig
	// Workers bounds pipeline parallelism (default: GOMAXPROCS). Each
	// worker owns one profiler whose analyzer tables are pooled across
	// every benchmark that worker processes.
	Workers int
	// Progress, when non-nil, is called after each benchmark completes.
	Progress func(done, total int, name string)
}

// BenchmarkPhases is one benchmark's phase decomposition in a
// registry-wide pipeline run.
type BenchmarkPhases struct {
	Benchmark Benchmark
	Result    *PhaseResult
}

// AnalyzePhasesAll runs phase analysis over every benchmark in the
// registry, sharded over a fixed worker pool, with results in Table I
// order. Each worker pools one profiler across all the benchmarks it
// processes (Reset between intervals and between benchmarks), so
// analyzer tables are built once per worker rather than once per
// interval; results are bit-identical to analyzing each benchmark in
// isolation.
func AnalyzePhasesAll(cfg PhasePipelineConfig) ([]BenchmarkPhases, error) {
	return AnalyzePhasesBenchmarks(Benchmarks(), cfg)
}

// AnalyzePhasesBenchmarks is AnalyzePhasesAll over an explicit
// benchmark list, returning results in input order.
func AnalyzePhasesBenchmarks(bs []Benchmark, cfg PhasePipelineConfig) ([]BenchmarkPhases, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]BenchmarkPhases, len(bs))
	errs := make([]error, len(bs))
	profs := make([]*micachar.Profiler, workers)
	var done int
	var mu sync.Mutex

	workerPool(len(bs), workers, func(worker, i int) {
		m, err := bs[i].Instantiate()
		if err != nil {
			errs[i] = err
			return
		}
		if profs[worker] == nil {
			profs[worker] = micachar.NewProfiler(cfg.Phase.Options)
		}
		res, err := phases.AnalyzeWith(m, profs[worker], cfg.Phase)
		results[i] = BenchmarkPhases{Benchmark: bs[i], Result: res}
		errs[i] = err
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(bs), bs[i].Name())
			mu.Unlock()
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mica: phase analysis of %s: %w", bs[i].Name(), err)
		}
	}
	return results, nil
}
