// Trace ingestion, end to end: record a benchmark's dynamic
// instruction stream to a durable .trc file, replay the file through
// the identical characterization pipeline (bit-identical to the live
// VM), then upload the raw bytes to a serving daemon and poll the
// characterization job it queues.
//
//	go run ./examples/trace
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"mica"
	"mica/internal/serve"
)

func main() {
	dir, err := os.MkdirTemp("", "mica-trace-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Record: run the embedded VM once, streaming its events into a
	// versioned, CRC32-checked trace file (tmp -> fsync -> rename, so
	// the committed name only ever holds a complete trace).
	const budget = 50_000
	b, err := mica.BenchmarkByName("MiBench/sha/large")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "sha.trc")
	n, err := mica.RecordTrace(b, path, budget)
	if err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d instructions of %s to %s (%d bytes, %.2f bytes/inst)\n\n",
		n, b.Name(), path, fi.Size(), float64(fi.Size())/float64(n))

	// 2. Replay: a trace-backed Benchmark flows through the same
	// pipelines as a live one. The characterization must be
	// bit-identical — same 47-dim vector, same HPC counters.
	cfg := mica.DefaultConfig()
	cfg.InstBudget = budget
	live, err := mica.Profile(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := mica.Profile(mica.TraceBenchmark(b.Name(), path), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if live.Chars != replayed.Chars || live.HPC != replayed.HPC {
		log.Fatal("replay diverged from the live VM — this is a bug")
	}
	fmt.Printf("replayed the file through mica.Profile: all %d characteristics and %d HPC\n",
		mica.NumChars, mica.NumHPCMetrics)
	fmt.Printf("counters are bit-identical to the live VM (e.g. ILP-32 %.4f, IPC EV56 %.4f)\n\n",
		replayed.Chars[mica.NumChars-1], replayed.HPC[0])

	// 3. Serve: a daemon with -tracedir enabled accepts raw trace
	// uploads, validates the container before touching disk, and queues
	// a normal characterization job under a content-addressed name.
	phase := mica.PhaseConfig{IntervalLen: 5_000, MaxIntervals: 10, MaxK: 3, Seed: 1}
	b2, err := mica.BenchmarkByName("CommBench/drr/drr")
	if err != nil {
		log.Fatal(err)
	}
	st, _, err := mica.CharacterizeToStore([]mica.Benchmark{b, b2},
		mica.PhasePipelineConfig{Phase: phase},
		mica.StoreOptions{Dir: filepath.Join(dir, "store")})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	srv, err := serve.New(st, serve.Config{
		Phase:    phase,
		TraceDir: filepath.Join(dir, "uploads"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/traces?name=sha-demo", "application/octet-stream",
		bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID        string `json:"id"`
		Benchmark string `json:"benchmark"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("uploaded %d bytes -> %d %s, job %s as %q\n",
		len(raw), resp.StatusCode, http.StatusText(resp.StatusCode), job.ID, job.Benchmark)

	// Poll until the queued characterization finishes.
	for {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		var polled struct {
			Status string `json:"status"`
			Error  string `json:"error"`
			Result *struct {
				Insts  uint64 `json:"insts"`
				Phases *struct {
					K int `json:"k"`
				} `json:"phases"`
			} `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&polled); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if polled.Status == "failed" {
			log.Fatalf("job failed: %s", polled.Error)
		}
		if polled.Status == "done" {
			fmt.Printf("job done: %d instructions characterized from the upload, %d phases\n",
				polled.Result.Insts, polled.Result.Phases.K)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
