// Suitecompare answers the paper's motivating question for one emerging
// suite: is this new workload actually different from SPEC CPU2000, or
// would adding it to a simulation campaign be redundant? It profiles one
// suite plus SPEC, selects the key characteristics with the genetic
// algorithm, clusters, and reports which benchmarks bring genuinely new
// behaviour (Section VI usage).
//
//	go run ./examples/suitecompare BioInfoMark
package main

import (
	"fmt"
	"log"
	"os"

	"mica"
)

func main() {
	suite := "BioInfoMark"
	if len(os.Args) > 1 {
		suite = os.Args[1]
	}
	candidates := mica.BenchmarksBySuite(suite)
	if len(candidates) == 0 {
		log.Fatalf("unknown suite %q; available: %v", suite, mica.SuiteNames())
	}
	spec := mica.BenchmarksBySuite("SPEC2000")

	cfg := mica.DefaultConfig()
	cfg.InstBudget = 150_000
	cfg.Progress = func(done, total int, name string) {
		fmt.Fprintf(os.Stderr, "\r[%2d/%2d] profiling %-55s", done, total, name)
	}
	results, err := mica.ProfileBenchmarks(append(candidates, spec...), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr)

	s := mica.NewSpace(results)
	ga := s.GASelect(2006)
	fmt.Printf("key characteristics (GA, rho=%.3f):", ga.Rho)
	for _, c := range ga.Selected {
		fmt.Printf(" %s", mica.CharName(c))
	}
	fmt.Println()

	sel := s.Cluster(ga.Selected, 20, 2006)
	assign := sel.Best.Assign
	fmt.Printf("clustered %d benchmarks into %d groups\n\n", s.Len(), sel.Best.K)

	// A candidate benchmark is redundant if it lands in a cluster that
	// already contains a SPEC benchmark, novel otherwise.
	specCluster := map[int][]string{}
	for i := len(candidates); i < s.Len(); i++ {
		specCluster[assign[i]] = append(specCluster[assign[i]], s.Names[i])
	}
	novel, redundant := 0, 0
	for i := range candidates {
		c := assign[i]
		if peers := specCluster[c]; len(peers) > 0 {
			redundant++
			fmt.Printf("REDUNDANT %-46s behaves like %s\n", s.Names[i], peers[0])
		} else {
			novel++
			fmt.Printf("NOVEL     %-46s no SPEC benchmark in its cluster\n", s.Names[i])
		}
	}
	fmt.Printf("\n%s: %d novel, %d redundant with SPEC CPU2000\n", suite, novel, redundant)
	if novel > 0 {
		fmt.Println("-> the suite adds behaviour SPEC does not cover; include the NOVEL benchmarks in design studies")
	} else {
		fmt.Println("-> simulating this suite alongside SPEC would add cost without insight")
	}
}
