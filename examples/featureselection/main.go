// Featureselection reproduces the Section V methodology comparison on a
// live profiling run: correlation elimination versus the genetic
// algorithm versus the PCA baseline, reporting the Figure 5 trade-off
// (distance correlation against number of characteristics to measure)
// and the measurement-cost saving of the selected subset.
//
//	go run ./examples/featureselection
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mica"
)

func main() {
	cfg := mica.DefaultConfig()
	cfg.InstBudget = 100_000
	cfg.Progress = func(done, total int, name string) {
		fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %-60s", done, total, name)
	}
	results, err := mica.ProfileAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr)

	s := mica.NewSpace(results)

	ga := s.GASelect(2006)
	fmt.Printf("genetic algorithm selected %d of %d characteristics (rho = %.3f):\n",
		len(ga.Selected), mica.NumChars, ga.Rho)
	for i, c := range ga.Selected {
		fmt.Printf("  %d. %-26s (%s)\n", i+1, mica.CharName(c), mica.CharCategory(c))
	}

	curve := s.CECurve()
	fmt.Println("\ncorrelation elimination trade-off (Figure 5):")
	for _, k := range []int{47, 24, 17, 12, 8, 4, 1} {
		fmt.Printf("  %2d retained -> rho %.3f\n", k, curve[k-1])
	}
	fmt.Printf("GA at size %d: rho %.3f (beats CE's %.3f)\n",
		len(ga.Selected), ga.Rho, curve[len(ga.Selected)-1])

	p := s.PCA()
	fmt.Printf("\nPCA baseline: %d components for 90%% variance, but all %d characteristics must be measured\n",
		p.ComponentsNeeded(0.9), mica.NumChars)

	// Demonstrate the actual measurement saving: re-profile one
	// benchmark with only the GA subset enabled.
	b, err := mica.BenchmarkByName("SPEC2000/crafty/ref")
	if err != nil {
		log.Fatal(err)
	}
	timeIt := func(subset []bool) time.Duration {
		c := mica.DefaultConfig()
		c.InstBudget = 2_000_000
		c.Subset = subset
		c.SkipHPC = true
		start := time.Now()
		if _, err := mica.Profile(b, c); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}
	subset := make([]bool, mica.NumChars)
	for _, c := range ga.Selected {
		subset[c] = true
	}
	full := timeIt(nil)
	key := timeIt(subset)
	fmt.Printf("\nmeasurement cost on %s (2M instructions):\n", b.Name())
	fmt.Printf("  all 47 characteristics: %v\n", full)
	fmt.Printf("  %d key characteristics:  %v (%.1fX faster; paper reports ~3X)\n",
		len(ga.Selected), key, float64(full)/float64(key))
}
