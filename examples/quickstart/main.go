// Quickstart: profile one benchmark and print its 47
// microarchitecture-independent characteristics (Table II) next to its
// machine-model performance counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mica"
)

func main() {
	b, err := mica.BenchmarkByName("SPEC2000/gzip/program")
	if err != nil {
		log.Fatal(err)
	}

	cfg := mica.DefaultConfig()
	cfg.InstBudget = 200_000

	res, err := mica.Profile(b, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (backing kernel %s)\n", b.Name(), b.Kernel)
	fmt.Printf("profiled %d dynamic instructions\n\n", res.Insts)

	fmt.Println("microarchitecture-independent characteristics:")
	for c := 0; c < mica.NumChars; c++ {
		fmt.Printf("  %2d  %-26s %10.4f   (%s)\n",
			c+1, mica.CharName(c), res.Chars[c], mica.CharCategory(c))
	}

	fmt.Println("\nhardware performance counter metrics (EV56/EV67 machine models):")
	for c := 0; c < mica.NumHPCMetrics; c++ {
		fmt.Printf("  %-24s %10.4f\n", mica.HPCMetricName(c), res.HPC[c])
	}
}
