// Pitfall reproduces the paper's Section IV case study (Figures 2 and
// 3): SPEC's bzip2 and BioInfoMark's blast look similar through hardware
// performance counters, yet their inherent microarchitecture-independent
// behaviour — working sets, global-history branch predictability, store
// strides — is very different. Relying on counters alone would wrongly
// conclude blast is redundant with SPEC.
//
//	go run ./examples/pitfall
package main

import (
	"fmt"
	"log"

	"mica"
)

func main() {
	names := []string{"SPEC2000/bzip2/graphic", "BioInfoMark/blast/protein"}
	var benchmarks []mica.Benchmark
	for _, n := range names {
		b, err := mica.BenchmarkByName(n)
		if err != nil {
			log.Fatal(err)
		}
		benchmarks = append(benchmarks, b)
	}

	cfg := mica.DefaultConfig()
	cfg.InstBudget = 200_000
	results, err := mica.ProfileBenchmarks(benchmarks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bz, bl := results[0], results[1]

	fmt.Println("=== hardware performance counter view (Figure 2) ===")
	fmt.Printf("%-24s %12s %12s\n", "metric", "bzip2", "blast")
	for c := 0; c < mica.NumHPCCounterMetrics; c++ {
		fmt.Printf("%-24s %12.4f %12.4f\n", mica.HPCMetricName(c), bz.HPC[c], bl.HPC[c])
	}

	fmt.Println("\n=== microarchitecture-independent view (Figure 3) ===")
	fmt.Printf("%-26s %12s %12s\n", "characteristic", "bzip2", "blast")
	for c := 0; c < mica.NumChars; c++ {
		fmt.Printf("%-26s %12.4f %12.4f\n", mica.CharName(c), bz.Chars[c], bl.Chars[c])
	}

	// Quantify the divergence the way the paper does: normalized
	// distances in each space, relative to the whole-registry spread.
	fmt.Println("\nprofiling the full registry to place the pair in both workload spaces...")
	all, err := mica.ProfileAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := mica.Analyze(all, mica.DefaultAnalysisConfig())
	fmt.Print("\n", a.RenderFigure2(), "\n", a.RenderFigure3())
}
