// Phases demonstrates the phase-analysis extension: split a benchmark's
// execution into intervals, characterize each with the
// microarchitecture-independent metrics, cluster intervals into phases,
// and select weighted representative intervals — the SimPoint-style
// recipe for simulating a small slice of a program instead of all of it.
//
// It then demonstrates the registry-scale counterpart: several
// benchmarks characterized into an on-disk interval-vector store and
// clustered into one SHARED phase vocabulary by streaming shards —
// the out-of-core joint path — including the incremental rerun that
// reuses every unchanged shard.
//
//	go run ./examples/phases [benchmark-name]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mica"
)

func main() {
	name := "SPEC2000/twolf/ref"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := mica.BenchmarkByName(name)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mica.AnalyzePhases(b, mica.PhaseConfig{
		IntervalLen:  10_000,
		MaxIntervals: 60,
		MaxK:         8,
		Seed:         2006,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d intervals of 10k instructions -> %d phases\n\n",
		name, len(res.Intervals), res.K)

	fmt.Println("phase timeline (one symbol per interval):")
	for _, p := range res.Assign {
		fmt.Printf("%c", 'A'+p)
	}
	fmt.Println()

	fmt.Println("\nrepresentative simulation points:")
	for _, rep := range res.Representatives {
		iv := res.Intervals[rep.Interval]
		v := res.Vector(rep.Interval)
		fmt.Printf("  phase %c: interval %2d (instructions %7d..%7d), weight %.2f, "+
			"loads %.2f, branches %.2f, ILP256 %.2f\n",
			'A'+rep.Phase, rep.Interval, iv.Start, iv.Start+iv.Insts, rep.Weight,
			v[0], v[2], v[9])
	}

	// Sanity: the weighted reconstruction approximates the full trace.
	approx := res.WeightedVector()
	fmt.Printf("\nweighted whole-program estimate: %.3f loads, %.3f branches, %.3f arith\n",
		approx[0], approx[2], approx[3])
	fmt.Printf("reconstruction error vs the full interval aggregate: %.4f mean abs/characteristic\n",
		res.ReconstructionError())
	fmt.Println("simulating only the representatives covers the program's behaviour at a fraction of the cost")

	// Registry-scale joint analysis through the interval-vector store:
	// each benchmark becomes one on-disk shard, and the clustering
	// streams rows shard-by-shard instead of materializing the
	// concatenated matrix — the path that scales to the full
	// 122-benchmark registry at paper-scale interval counts.
	fmt.Println("\n--- store-backed joint phase vocabulary ---")
	set := []string{name, "MiBench/sha/large", "SPEC2000/gzip/program"}
	var bs []mica.Benchmark
	seen := map[string]bool{}
	for _, n := range set {
		if seen[n] {
			continue
		}
		seen[n] = true
		sb, err := mica.BenchmarkByName(n)
		if err != nil {
			log.Fatal(err)
		}
		bs = append(bs, sb)
	}
	dir, err := os.MkdirTemp("", "mica-ivstore-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pcfg := mica.PhasePipelineConfig{Phase: mica.PhaseConfig{
		IntervalLen: 10_000, MaxIntervals: 60, MaxK: 8, Seed: 2006,
	}}
	opt := mica.StoreOptions{Dir: filepath.Join(dir, "store"), Incremental: true}

	joint, stats, err := mica.AnalyzePhasesJointStore(bs, pcfg, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d benchmarks -> %d shards on disk -> %d shared phases over %d intervals\n",
		len(bs), len(stats.Characterized), joint.K, len(joint.Rows))
	for b, bname := range joint.Benchmarks {
		fmt.Printf("  %-28s occupancy:", bname)
		for c := 0; c < joint.K; c++ {
			fmt.Printf(" %c=%.2f", 'A'+c, joint.PhaseShare(b, c))
		}
		fmt.Println()
	}

	// An incremental rerun reuses every unchanged shard: no profiling.
	_, stats, err = mica.AnalyzePhasesJointStore(bs, pcfg, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental rerun: %d re-characterized, %d shards reused in place\n",
		len(stats.Characterized), len(stats.Reused))
}
