package mica

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"

	"mica/internal/stats"
)

// PhaseCacheVersion is the on-disk format version of phase-result
// caches written by SavePhases/SaveJointPhases. Loaders accept files
// with unknown extra fields (forward-compatible additions) but refuse
// a different version stamp.
const PhaseCacheVersion = 1

// phaseCacheFile is the JSON on-disk form of a phase-analysis run —
// the expensive profiling + clustering step cached between tool
// invocations, mirroring SaveResults for profiling runs.
type phaseCacheFile struct {
	Version int             `json:"version"`
	Config  phaseConfigJSON `json:"config"`
	// Results holds per-benchmark phase decompositions (SavePhases).
	Results []phaseResultJSON `json:"results,omitempty"`
	// Joint holds a shared cross-benchmark vocabulary (SaveJointPhases).
	Joint *phaseJointJSON `json:"joint,omitempty"`
}

// phaseConfigJSON is the normalized analysis configuration a cache was
// produced under; a cache only satisfies a request with an identical
// configuration.
type phaseConfigJSON struct {
	IntervalLen  uint64 `json:"interval_len"`
	MaxIntervals int    `json:"max_intervals"`
	MaxK         int    `json:"max_k"`
	Seed         int64  `json:"seed"`
	PPMOrder     int    `json:"ppm_order,omitempty"`
	NoMemDeps    bool   `json:"no_mem_deps,omitempty"`
	Subset       []bool `json:"subset,omitempty"`
}

func phaseConfigToJSON(cfg PhaseConfig) phaseConfigJSON {
	cfg = cfg.WithDefaults()
	subset := cfg.Options.Subset
	if len(subset) == 0 {
		// A non-nil empty subset means "all characteristics", same as
		// nil; normalize so the round-trip through json omitempty (which
		// drops the empty slice) still compares equal.
		subset = nil
	}
	return phaseConfigJSON{
		IntervalLen:  cfg.IntervalLen,
		MaxIntervals: cfg.MaxIntervals,
		MaxK:         cfg.MaxK,
		Seed:         cfg.Seed,
		PPMOrder:     cfg.Options.PPMOrder,
		NoMemDeps:    cfg.Options.NoMemDeps,
		Subset:       subset,
	}
}

func phaseConfigFromJSON(cj phaseConfigJSON) PhaseConfig {
	cfg := PhaseConfig{
		IntervalLen:  cj.IntervalLen,
		MaxIntervals: cj.MaxIntervals,
		MaxK:         cj.MaxK,
		Seed:         cj.Seed,
	}
	cfg.Options.PPMOrder = cj.PPMOrder
	cfg.Options.NoMemDeps = cj.NoMemDeps
	cfg.Options.Subset = cj.Subset
	return cfg
}

type phaseIntervalJSON struct {
	Index int    `json:"index"`
	Start uint64 `json:"start"`
	Insts uint64 `json:"insts"`
}

type phaseRepJSON struct {
	Phase    int     `json:"phase"`
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight"`
}

type phaseResultJSON struct {
	Name      string              `json:"name"`
	Intervals []phaseIntervalJSON `json:"intervals"`
	// Vectors is the flat row-major interval-characteristic matrix
	// (len(Intervals) rows of NumChars columns).
	Vectors         []float64      `json:"vectors"`
	Assign          []int          `json:"assign"`
	K               int            `json:"k"`
	Representatives []phaseRepJSON `json:"representatives"`
}

type phaseJointRepJSON struct {
	Phase    int     `json:"phase"`
	Row      int     `json:"row"`
	Bench    int     `json:"bench"`
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight"`
}

type phaseJointJSON struct {
	Benchmarks []string            `json:"benchmarks"`
	Rows       []PhaseRowRef       `json:"rows"`
	RowInsts   []uint64            `json:"row_insts"`
	Vectors    []float64           `json:"vectors"`
	Assign     []int               `json:"assign"`
	K          int                 `json:"k"`
	Reps       []phaseJointRepJSON `json:"representatives"`
	// Occupancy is flat row-major (len(Benchmarks) x K).
	Occupancy []float64 `json:"occupancy"`
}

// SavePhases writes per-benchmark phase-analysis results to a JSON
// cache file, keyed by the (normalized) configuration that produced
// them. Mirrors SaveResults.
func SavePhases(path string, cfg PhaseConfig, results []BenchmarkPhases) error {
	pf := phaseCacheFile{Version: PhaseCacheVersion, Config: phaseConfigToJSON(cfg)}
	for _, r := range results {
		res := r.Result
		rj := phaseResultJSON{
			Name:    r.Benchmark.Name(),
			Vectors: append([]float64(nil), res.Vectors.Data...),
			Assign:  append([]int(nil), res.Assign...),
			K:       res.K,
		}
		for _, iv := range res.Intervals {
			rj.Intervals = append(rj.Intervals, phaseIntervalJSON(iv))
		}
		for _, rep := range res.Representatives {
			rj.Representatives = append(rj.Representatives, phaseRepJSON(rep))
		}
		pf.Results = append(pf.Results, rj)
	}
	return writePhaseCache(path, pf)
}

// LoadPhases reads a cache written by SavePhases. Benchmarks are
// re-resolved by name against the registry, so a stale file naming
// unknown benchmarks fails loudly; unknown JSON fields are tolerated,
// a different version stamp is not.
func LoadPhases(path string) ([]BenchmarkPhases, PhaseConfig, error) {
	pf, err := readPhaseCache(path)
	if err != nil {
		return nil, PhaseConfig{}, err
	}
	if len(pf.Results) == 0 {
		// A joint-only (or empty) cache is not a per-benchmark cache;
		// failing here keeps AnalyzePhasesCached from overwriting it.
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s has no per-benchmark phase results", path)
	}
	out := make([]BenchmarkPhases, 0, len(pf.Results))
	for _, rj := range pf.Results {
		b, err := BenchmarkByName(rj.Name)
		if err != nil {
			return nil, PhaseConfig{}, err
		}
		res, err := phaseResultFromJSON(rj)
		if err != nil {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: %s: %w", path, rj.Name, err)
		}
		out = append(out, BenchmarkPhases{Benchmark: b, Result: res})
	}
	return out, phaseConfigFromJSON(pf.Config), nil
}

func phaseResultFromJSON(rj phaseResultJSON) (*PhaseResult, error) {
	n := len(rj.Intervals)
	if n == 0 {
		return nil, fmt.Errorf("no intervals")
	}
	if len(rj.Vectors) != n*NumChars {
		return nil, fmt.Errorf("%d vector values for %d intervals (want %d)",
			len(rj.Vectors), n, n*NumChars)
	}
	if len(rj.Assign) != n {
		return nil, fmt.Errorf("%d assignments for %d intervals", len(rj.Assign), n)
	}
	res := &PhaseResult{
		Vectors: &stats.Matrix{Rows: n, Cols: NumChars, Data: rj.Vectors},
		Assign:  rj.Assign,
		K:       rj.K,
	}
	for _, iv := range rj.Intervals {
		res.Intervals = append(res.Intervals, PhaseInterval(iv))
	}
	for _, rep := range rj.Representatives {
		if rep.Interval < 0 || rep.Interval >= n || rep.Phase < 0 || rep.Phase >= rj.K {
			return nil, fmt.Errorf("representative %+v out of range", rep)
		}
		res.Representatives = append(res.Representatives, PhaseRepresentative(rep))
	}
	for _, c := range res.Assign {
		if c < 0 || c >= res.K {
			return nil, fmt.Errorf("assignment %d out of range for K=%d", c, res.K)
		}
	}
	return res, nil
}

// SaveJointPhases writes a shared cross-benchmark phase vocabulary to
// a JSON cache file.
func SaveJointPhases(path string, cfg PhaseConfig, j *PhaseJointResult) error {
	jj := &phaseJointJSON{
		Benchmarks: j.Benchmarks,
		Rows:       j.Rows,
		RowInsts:   j.RowInsts,
		Vectors:    append([]float64(nil), j.Vectors.Data...),
		Assign:     j.Assign,
		K:          j.K,
		Occupancy:  append([]float64(nil), j.Occupancy.Data...),
	}
	for _, rep := range j.Representatives {
		jj.Reps = append(jj.Reps, phaseJointRepJSON(rep))
	}
	return writePhaseCache(path, phaseCacheFile{
		Version: PhaseCacheVersion,
		Config:  phaseConfigToJSON(cfg),
		Joint:   jj,
	})
}

// LoadJointPhases reads a cache written by SaveJointPhases.
func LoadJointPhases(path string) (*PhaseJointResult, PhaseConfig, error) {
	pf, err := readPhaseCache(path)
	if err != nil {
		return nil, PhaseConfig{}, err
	}
	jj := pf.Joint
	if jj == nil {
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s has no joint phase results", path)
	}
	n := len(jj.Rows)
	if len(jj.Vectors) != n*NumChars || len(jj.Assign) != n || len(jj.RowInsts) != n {
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s: joint matrix shape mismatch", path)
	}
	if len(jj.Occupancy) != len(jj.Benchmarks)*jj.K {
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s: occupancy shape mismatch", path)
	}
	for _, ref := range jj.Rows {
		if ref.Bench < 0 || ref.Bench >= len(jj.Benchmarks) {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: row provenance out of range", path)
		}
	}
	for _, c := range jj.Assign {
		if c < 0 || c >= jj.K {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: joint assignment %d out of range for K=%d", path, c, jj.K)
		}
	}
	for _, rep := range jj.Reps {
		if rep.Row < 0 || rep.Row >= n || rep.Bench < 0 || rep.Bench >= len(jj.Benchmarks) ||
			rep.Phase < 0 || rep.Phase >= jj.K {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: joint representative %+v out of range", path, rep)
		}
	}
	j := &PhaseJointResult{
		Benchmarks: jj.Benchmarks,
		Rows:       jj.Rows,
		RowInsts:   jj.RowInsts,
		Vectors:    &stats.Matrix{Rows: n, Cols: NumChars, Data: jj.Vectors},
		Assign:     jj.Assign,
		K:          jj.K,
		Occupancy:  &stats.Matrix{Rows: len(jj.Benchmarks), Cols: jj.K, Data: jj.Occupancy},
	}
	for _, rep := range jj.Reps {
		j.Representatives = append(j.Representatives, PhaseJointRepresentative(rep))
	}
	return j, phaseConfigFromJSON(pf.Config), nil
}

func writePhaseCache(path string, pf phaseCacheFile) error {
	data, err := json.MarshalIndent(pf, "", " ")
	if err != nil {
		return fmt.Errorf("mica: encoding phase cache: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readPhaseCache(path string) (phaseCacheFile, error) {
	var pf phaseCacheFile
	data, err := os.ReadFile(path)
	if err != nil {
		return pf, err
	}
	if err := json.Unmarshal(data, &pf); err != nil {
		return pf, fmt.Errorf("mica: decoding %s: %w", path, err)
	}
	if pf.Version != PhaseCacheVersion {
		return pf, fmt.Errorf("mica: %s: phase cache version %d, want %d", path, pf.Version, PhaseCacheVersion)
	}
	return pf, nil
}

// configsMatch reports whether a loaded cache configuration satisfies
// a request.
func configsMatch(gotCfg, wantCfg PhaseConfig) bool {
	return reflect.DeepEqual(phaseConfigToJSON(gotCfg), phaseConfigToJSON(wantCfg))
}

// namesMatch reports whether a loaded benchmark list is exactly the
// requested one, in order.
func namesMatch(gotNames []string, bs []Benchmark) bool {
	if len(gotNames) != len(bs) {
		return false
	}
	for i, b := range bs {
		if gotNames[i] != b.Name() {
			return false
		}
	}
	return true
}

// loadableCacheError filters a LoadPhases/LoadJointPhases error down
// to the cases a cached pipeline may recover from by recomputing: a
// missing file. A file that exists but cannot be parsed, carries a
// different version stamp, or fails validation is surfaced instead of
// being silently recomputed over — overwriting it could destroy a
// cache that is merely newer or hand-maintained.
func loadableCacheError(path string, err error) error {
	if os.IsNotExist(err) {
		return nil
	}
	return fmt.Errorf("mica: %s exists but is not a usable phase cache (delete it or pass another path): %w", path, err)
}

// AnalyzePhasesCached is AnalyzePhasesBenchmarks behind a JSON cache:
// if path holds results under the same (normalized) configuration for
// every requested benchmark — the whole file or any subset of it, so a
// registry-wide cache also serves later single-benchmark drill-downs —
// they are returned without instantiating a single VM or profiler.
// Otherwise the pipeline runs and its results replace path. A file
// that exists but cannot be loaded is an error, never silently
// overwritten. The boolean reports whether the cache was hit.
func AnalyzePhasesCached(path string, bs []Benchmark, cfg PhasePipelineConfig) ([]BenchmarkPhases, bool, error) {
	var cachedNames []string
	cached, gotCfg, err := LoadPhases(path)
	if err != nil {
		if lerr := loadableCacheError(path, err); lerr != nil {
			return nil, false, lerr
		}
	} else {
		for _, r := range cached {
			cachedNames = append(cachedNames, r.Benchmark.Name())
		}
		if configsMatch(gotCfg, cfg.Phase) {
			byName := make(map[string]*PhaseResult, len(cached))
			for _, r := range cached {
				byName[r.Benchmark.Name()] = r.Result
			}
			hit := make([]BenchmarkPhases, 0, len(bs))
			for _, b := range bs {
				res, ok := byName[b.Name()]
				if !ok {
					hit = nil
					break
				}
				hit = append(hit, BenchmarkPhases{Benchmark: b, Result: res})
			}
			if hit != nil {
				return hit, true, nil
			}
		}
	}
	results, err := AnalyzePhasesBenchmarks(bs, cfg)
	if err != nil {
		return nil, false, err
	}
	// Never replace a broader cache with a narrower run: a mismatched
	// drill-down (subset of the cached benchmarks under a different
	// configuration) computes fresh results but leaves the expensive
	// cache on disk untouched.
	if coversCache(bs, cachedNames) {
		if err := SavePhases(path, cfg.Phase, results); err != nil {
			return nil, false, err
		}
	}
	return results, false, nil
}

// coversCache reports whether the requested benchmark set includes
// every benchmark the existing cache holds — the condition under which
// overwriting the cache cannot lose results.
func coversCache(bs []Benchmark, cachedNames []string) bool {
	if len(cachedNames) == 0 {
		return true
	}
	requested := make(map[string]bool, len(bs))
	for _, b := range bs {
		requested[b.Name()] = true
	}
	for _, n := range cachedNames {
		if !requested[n] {
			return false
		}
	}
	return true
}

// AnalyzePhasesJointCached is AnalyzePhasesJoint behind a JSON cache,
// with the same contract as AnalyzePhasesCached — except that a joint
// vocabulary depends on every member benchmark, so only an exact
// benchmark-list match (not a subset) is a hit.
func AnalyzePhasesJointCached(path string, bs []Benchmark, cfg PhasePipelineConfig) (*PhaseJointResult, bool, error) {
	cached, gotCfg, err := LoadJointPhases(path)
	if err != nil {
		if lerr := loadableCacheError(path, err); lerr != nil {
			return nil, false, lerr
		}
	} else if configsMatch(gotCfg, cfg.Phase) && namesMatch(cached.Benchmarks, bs) {
		return cached, true, nil
	}
	j, err := AnalyzePhasesJoint(bs, cfg)
	if err != nil {
		return nil, false, err
	}
	// Same no-loss rule as AnalyzePhasesCached: a narrower mismatched
	// request never overwrites a broader joint cache.
	var cachedNames []string
	if cached != nil {
		cachedNames = cached.Benchmarks
	}
	if coversCache(bs, cachedNames) {
		if err := SaveJointPhases(path, cfg.Phase, j); err != nil {
			return nil, false, err
		}
	}
	return j, false, nil
}
