package mica

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"

	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/pool"
	"mica/internal/stats"
	"mica/internal/trace"
)

// PhaseCacheVersion is the on-disk format version of phase-result
// caches written by SavePhases/SaveJointPhases. Loaders accept files
// with unknown extra fields (forward-compatible additions) but refuse
// a different version stamp.
const PhaseCacheVersion = 1

// phaseCacheFile is the JSON on-disk form of a phase-analysis run —
// the expensive profiling + clustering step cached between tool
// invocations, mirroring SaveResults for profiling runs.
type phaseCacheFile struct {
	Version int             `json:"version"`
	Config  phaseConfigJSON `json:"config"`
	// Results holds per-benchmark phase decompositions (SavePhases) —
	// for a reduced cache, the cheap-pass vocabularies.
	Results []phaseResultJSON `json:"results,omitempty"`
	// Joint holds a shared cross-benchmark vocabulary (SaveJointPhases).
	Joint *phaseJointJSON `json:"joint,omitempty"`
	// ReducedConfig and Reduced hold the replay-side configuration and
	// per-benchmark reduced-profiling outputs (SaveReduced).
	ReducedConfig *reducedConfigJSON `json:"reduced_config,omitempty"`
	Reduced       []phaseReducedJSON `json:"reduced,omitempty"`
}

// phaseConfigJSON is the normalized analysis configuration a cache was
// produced under; a cache only satisfies a request with an identical
// configuration.
type phaseConfigJSON struct {
	IntervalLen  uint64 `json:"interval_len"`
	MaxIntervals int    `json:"max_intervals"`
	MaxK         int    `json:"max_k"`
	Seed         int64  `json:"seed"`
	PPMOrder     int    `json:"ppm_order,omitempty"`
	NoMemDeps    bool   `json:"no_mem_deps,omitempty"`
	Subset       []bool `json:"subset,omitempty"`
	// SampleFrac stamps vocabularies characterized by the reduced
	// pipeline's sampled cheap pass; absent (0) means every instruction
	// was observed, so plain phase caches keep their old on-disk form
	// and a sampled vocabulary can never be mistaken for an exact one.
	SampleFrac float64 `json:"sample_frac,omitempty"`
}

func phaseConfigToJSON(cfg PhaseConfig) phaseConfigJSON {
	cfg = cfg.WithDefaults()
	subset := cfg.Options.Subset
	if len(subset) == 0 {
		// A non-nil empty subset means "all characteristics", same as
		// nil; normalize so the round-trip through json omitempty (which
		// drops the empty slice) still compares equal.
		subset = nil
	}
	return phaseConfigJSON{
		IntervalLen:  cfg.IntervalLen,
		MaxIntervals: cfg.MaxIntervals,
		MaxK:         cfg.MaxK,
		Seed:         cfg.Seed,
		PPMOrder:     cfg.Options.PPMOrder,
		NoMemDeps:    cfg.Options.NoMemDeps,
		Subset:       subset,
	}
}

func phaseConfigFromJSON(cj phaseConfigJSON) PhaseConfig {
	cfg := PhaseConfig{
		IntervalLen:  cj.IntervalLen,
		MaxIntervals: cj.MaxIntervals,
		MaxK:         cj.MaxK,
		Seed:         cj.Seed,
	}
	cfg.Options.PPMOrder = cj.PPMOrder
	cfg.Options.NoMemDeps = cj.NoMemDeps
	cfg.Options.Subset = cj.Subset
	return cfg
}

type phaseIntervalJSON struct {
	Index int    `json:"index"`
	Start uint64 `json:"start"`
	Insts uint64 `json:"insts"`
}

type phaseRepJSON struct {
	Phase    int     `json:"phase"`
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight"`
}

type phaseResultJSON struct {
	Name      string              `json:"name"`
	Intervals []phaseIntervalJSON `json:"intervals"`
	// Vectors is the flat row-major interval-characteristic matrix
	// (len(Intervals) rows of NumChars columns).
	Vectors         []float64      `json:"vectors"`
	Assign          []int          `json:"assign"`
	K               int            `json:"k"`
	Representatives []phaseRepJSON `json:"representatives"`
}

type phaseJointRepJSON struct {
	Phase    int     `json:"phase"`
	Row      int     `json:"row"`
	Bench    int     `json:"bench"`
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight"`
}

type phaseJointJSON struct {
	Benchmarks []string            `json:"benchmarks"`
	Rows       []PhaseRowRef       `json:"rows"`
	RowInsts   []uint64            `json:"row_insts"`
	Vectors    []float64           `json:"vectors"`
	Assign     []int               `json:"assign"`
	K          int                 `json:"k"`
	Reps       []phaseJointRepJSON `json:"representatives"`
	// Occupancy is flat row-major (len(Benchmarks) x K).
	Occupancy []float64 `json:"occupancy"`
}

// SavePhases writes per-benchmark phase-analysis results to a JSON
// cache file, keyed by the (normalized) configuration that produced
// them. Mirrors SaveResults.
func SavePhases(path string, cfg PhaseConfig, results []BenchmarkPhases) error {
	pf := phaseCacheFile{Version: PhaseCacheVersion, Config: phaseConfigToJSON(cfg)}
	for _, r := range results {
		res := r.Result
		rj := phaseResultJSON{
			Name:    r.Benchmark.Name(),
			Vectors: append([]float64(nil), res.Vectors.Data...),
			Assign:  append([]int(nil), res.Assign...),
			K:       res.K,
		}
		for _, iv := range res.Intervals {
			rj.Intervals = append(rj.Intervals, phaseIntervalJSON(iv))
		}
		for _, rep := range res.Representatives {
			rj.Representatives = append(rj.Representatives, phaseRepJSON(rep))
		}
		pf.Results = append(pf.Results, rj)
	}
	return writePhaseCache(path, pf)
}

// LoadPhases reads a cache written by SavePhases. Benchmarks are
// re-resolved by name against the registry, so a stale file naming
// unknown benchmarks fails loudly; unknown JSON fields are tolerated,
// a different version stamp is not.
func LoadPhases(path string) ([]BenchmarkPhases, PhaseConfig, error) {
	pf, err := readPhaseCache(path)
	if err != nil {
		return nil, PhaseConfig{}, err
	}
	if len(pf.Results) == 0 {
		// A joint-only (or empty) cache is not a per-benchmark cache;
		// failing here keeps AnalyzePhasesCached from overwriting it.
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s has no per-benchmark phase results", path)
	}
	out := make([]BenchmarkPhases, 0, len(pf.Results))
	for _, rj := range pf.Results {
		b, err := BenchmarkByName(rj.Name)
		if err != nil {
			return nil, PhaseConfig{}, err
		}
		res, err := phaseResultFromJSON(rj)
		if err != nil {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: %s: %w", path, rj.Name, err)
		}
		out = append(out, BenchmarkPhases{Benchmark: b, Result: res})
	}
	return out, phaseConfigFromJSON(pf.Config), nil
}

func phaseResultFromJSON(rj phaseResultJSON) (*PhaseResult, error) {
	n := len(rj.Intervals)
	if n == 0 {
		return nil, fmt.Errorf("no intervals")
	}
	if len(rj.Vectors) != n*NumChars {
		return nil, fmt.Errorf("%d vector values for %d intervals (want %d)",
			len(rj.Vectors), n, n*NumChars)
	}
	if len(rj.Assign) != n {
		return nil, fmt.Errorf("%d assignments for %d intervals", len(rj.Assign), n)
	}
	res := &PhaseResult{
		Vectors: &stats.Matrix{Rows: n, Cols: NumChars, Data: rj.Vectors},
		Assign:  rj.Assign,
		K:       rj.K,
	}
	for _, iv := range rj.Intervals {
		res.Intervals = append(res.Intervals, PhaseInterval(iv))
	}
	for _, rep := range rj.Representatives {
		if rep.Interval < 0 || rep.Interval >= n || rep.Phase < 0 || rep.Phase >= rj.K {
			return nil, fmt.Errorf("representative %+v out of range", rep)
		}
		res.Representatives = append(res.Representatives, PhaseRepresentative(rep))
	}
	for _, c := range res.Assign {
		if c < 0 || c >= res.K {
			return nil, fmt.Errorf("assignment %d out of range for K=%d", c, res.K)
		}
	}
	return res, nil
}

// SaveJointPhases writes a shared cross-benchmark phase vocabulary to
// a JSON cache file.
func SaveJointPhases(path string, cfg PhaseConfig, j *PhaseJointResult) error {
	return saveJointPhasesWithConfig(path, phaseConfigToJSON(cfg), j)
}

// saveJointPhasesWithConfig is SaveJointPhases with a caller-stamped
// configuration block — the reduced pipeline stamps its sample
// fraction so a sampled joint vocabulary is never mistaken for an
// exact one.
func saveJointPhasesWithConfig(path string, cj phaseConfigJSON, j *PhaseJointResult) error {
	jj := &phaseJointJSON{
		Benchmarks: j.Benchmarks,
		Rows:       j.Rows,
		RowInsts:   j.RowInsts,
		Vectors:    append([]float64(nil), j.Vectors.Data...),
		Assign:     j.Assign,
		K:          j.K,
		Occupancy:  append([]float64(nil), j.Occupancy.Data...),
	}
	for _, rep := range j.Representatives {
		jj.Reps = append(jj.Reps, phaseJointRepJSON(rep))
	}
	return writePhaseCache(path, phaseCacheFile{Version: PhaseCacheVersion, Config: cj, Joint: jj})
}

// LoadJointPhases reads a cache written by SaveJointPhases.
func LoadJointPhases(path string) (*PhaseJointResult, PhaseConfig, error) {
	pf, err := readPhaseCache(path)
	if err != nil {
		return nil, PhaseConfig{}, err
	}
	jj := pf.Joint
	if jj == nil {
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s has no joint phase results", path)
	}
	n := len(jj.Rows)
	if len(jj.Vectors) != n*NumChars || len(jj.Assign) != n || len(jj.RowInsts) != n {
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s: joint matrix shape mismatch", path)
	}
	if len(jj.Occupancy) != len(jj.Benchmarks)*jj.K {
		return nil, PhaseConfig{}, fmt.Errorf("mica: %s: occupancy shape mismatch", path)
	}
	for _, ref := range jj.Rows {
		if ref.Bench < 0 || ref.Bench >= len(jj.Benchmarks) {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: row provenance out of range", path)
		}
	}
	for _, c := range jj.Assign {
		if c < 0 || c >= jj.K {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: joint assignment %d out of range for K=%d", path, c, jj.K)
		}
	}
	for _, rep := range jj.Reps {
		if rep.Row < 0 || rep.Row >= n || rep.Bench < 0 || rep.Bench >= len(jj.Benchmarks) ||
			rep.Phase < 0 || rep.Phase >= jj.K {
			return nil, PhaseConfig{}, fmt.Errorf("mica: %s: joint representative %+v out of range", path, rep)
		}
	}
	j := &PhaseJointResult{
		Benchmarks: jj.Benchmarks,
		Rows:       jj.Rows,
		RowInsts:   jj.RowInsts,
		Vectors:    &stats.Matrix{Rows: n, Cols: NumChars, Data: jj.Vectors},
		Assign:     jj.Assign,
		K:          jj.K,
		Occupancy:  &stats.Matrix{Rows: len(jj.Benchmarks), Cols: jj.K, Data: jj.Occupancy},
	}
	for _, rep := range jj.Reps {
		j.Representatives = append(j.Representatives, PhaseJointRepresentative(rep))
	}
	return j, phaseConfigFromJSON(pf.Config), nil
}

func writePhaseCache(path string, pf phaseCacheFile) error {
	data, err := json.MarshalIndent(pf, "", " ")
	if err != nil {
		return fmt.Errorf("mica: encoding phase cache: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readPhaseCache(path string) (phaseCacheFile, error) {
	var pf phaseCacheFile
	data, err := os.ReadFile(path)
	if err != nil {
		return pf, err
	}
	if err := json.Unmarshal(data, &pf); err != nil {
		return pf, fmt.Errorf("mica: decoding %s: %w", path, err)
	}
	if pf.Version != PhaseCacheVersion {
		return pf, fmt.Errorf("mica: %s: phase cache version %d, want %d", path, pf.Version, PhaseCacheVersion)
	}
	return pf, nil
}

// phaseConfigHash returns the sha256 hex stamp of the normalized phase
// configuration — the provenance key interval-vector stores record per
// shard (CharacterizeToStore). It hashes the same normalized JSON form
// the JSON caches are keyed on, so "would this cache hit" and "can
// this shard be reused" are decided by one serialization.
func phaseConfigHash(cfg PhaseConfig) string {
	data, err := json.Marshal(phaseConfigToJSON(cfg))
	if err != nil {
		// phaseConfigJSON is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("mica: hashing phase config: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// PhaseConfigKey is the public form of the phase-configuration stamp:
// the sha256 hex of the normalized configuration, the same key the
// JSON caches match on and the stamp interval-vector store shards
// carry. Two requests with equal keys and equal benchmark names ask
// for the same characterization, which is what lets a serving layer
// (mica-serve) collapse identical in-flight and completed submissions
// onto one run.
func PhaseConfigKey(cfg PhaseConfig) string {
	return phaseConfigHash(cfg.WithDefaults())
}

// ReducedConfigKey is PhaseConfigKey's reduced-pipeline counterpart:
// the stamp reduced cheap-pass shards are matched on, disjoint from
// plain phase stamps even at SampleFrac == 1.
func ReducedConfigKey(cfg ReducedConfig) string {
	return reducedStoreHash(cfg.WithDefaults())
}

// configsMatch reports whether a loaded cache configuration satisfies
// a request.
func configsMatch(gotCfg, wantCfg PhaseConfig) bool {
	return reflect.DeepEqual(phaseConfigToJSON(gotCfg), phaseConfigToJSON(wantCfg))
}

// namesMatch reports whether a loaded benchmark list is exactly the
// requested one, in order.
func namesMatch(gotNames []string, bs []Benchmark) bool {
	if len(gotNames) != len(bs) {
		return false
	}
	for i, b := range bs {
		if gotNames[i] != b.Name() {
			return false
		}
	}
	return true
}

// loadableCacheError filters a LoadPhases/LoadJointPhases error down
// to the cases a cached pipeline may recover from by recomputing: a
// missing file. A file that exists but cannot be parsed, carries a
// different version stamp, or fails validation is surfaced instead of
// being silently recomputed over — overwriting it could destroy a
// cache that is merely newer or hand-maintained.
func loadableCacheError(path string, err error) error {
	if os.IsNotExist(err) {
		return nil
	}
	return fmt.Errorf("mica: %s exists but is not a usable phase cache (delete it or pass another path): %w", path, err)
}

// AnalyzePhasesCached is AnalyzePhasesBenchmarks behind a JSON cache:
// if path holds results under the same (normalized) configuration for
// every requested benchmark — the whole file or any subset of it, so a
// registry-wide cache also serves later single-benchmark drill-downs —
// they are returned without instantiating a single VM or profiler.
// Otherwise the pipeline runs and its results replace path. A file
// that exists but cannot be loaded is an error, never silently
// overwritten. The boolean reports whether the cache was hit.
func AnalyzePhasesCached(path string, bs []Benchmark, cfg PhasePipelineConfig) ([]BenchmarkPhases, bool, error) {
	var cachedNames []string
	cached, gotCfg, err := LoadPhases(path)
	if err != nil {
		if lerr := loadableCacheError(path, err); lerr != nil {
			return nil, false, lerr
		}
	} else {
		for _, r := range cached {
			cachedNames = append(cachedNames, r.Benchmark.Name())
		}
		if configsMatch(gotCfg, cfg.Phase) {
			byName := make(map[string]*PhaseResult, len(cached))
			for _, r := range cached {
				byName[r.Benchmark.Name()] = r.Result
			}
			hit := make([]BenchmarkPhases, 0, len(bs))
			for _, b := range bs {
				res, ok := byName[b.Name()]
				if !ok {
					hit = nil
					break
				}
				hit = append(hit, BenchmarkPhases{Benchmark: b, Result: res})
			}
			if hit != nil {
				return hit, true, nil
			}
		}
	}
	results, err := AnalyzePhasesBenchmarks(bs, cfg)
	if err != nil {
		return nil, false, err
	}
	// Never replace a broader cache with a narrower run: a mismatched
	// drill-down (subset of the cached benchmarks under a different
	// configuration) computes fresh results but leaves the expensive
	// cache on disk untouched.
	if coversCache(bs, cachedNames) {
		if err := SavePhases(path, cfg.Phase, results); err != nil {
			return nil, false, err
		}
	}
	return results, false, nil
}

// coversCache reports whether the requested benchmark set includes
// every benchmark the existing cache holds — the condition under which
// overwriting the cache cannot lose results.
func coversCache(bs []Benchmark, cachedNames []string) bool {
	if len(cachedNames) == 0 {
		return true
	}
	requested := make(map[string]bool, len(bs))
	for _, b := range bs {
		requested[b.Name()] = true
	}
	for _, n := range cachedNames {
		if !requested[n] {
			return false
		}
	}
	return true
}

// AnalyzePhasesJointCached is AnalyzePhasesJoint behind a JSON cache,
// with the same contract as AnalyzePhasesCached — except that a joint
// vocabulary depends on every member benchmark, so only an exact
// benchmark-list match (not a subset) is a hit.
func AnalyzePhasesJointCached(path string, bs []Benchmark, cfg PhasePipelineConfig) (*PhaseJointResult, bool, error) {
	cached, gotCfg, err := LoadJointPhases(path)
	if err != nil {
		if lerr := loadableCacheError(path, err); lerr != nil {
			return nil, false, lerr
		}
	} else if configsMatch(gotCfg, cfg.Phase) && namesMatch(cached.Benchmarks, bs) {
		return cached, true, nil
	}
	j, err := AnalyzePhasesJoint(bs, cfg)
	if err != nil {
		return nil, false, err
	}
	// Same no-loss rule as AnalyzePhasesCached: a narrower mismatched
	// request never overwrites a broader joint cache.
	var cachedNames []string
	if cached != nil {
		cachedNames = cached.Benchmarks
	}
	if coversCache(bs, cachedNames) {
		if err := SaveJointPhases(path, cfg.Phase, j); err != nil {
			return nil, false, err
		}
	}
	return j, false, nil
}

// Reduced-profiling persistence. A reduced cache file holds the
// cheap-pass vocabularies in Results (keyed by the cheap configuration
// with its sample stamp), the replay-side configuration in
// ReducedConfig, and the per-benchmark reduced outputs in Reduced —
// so a rerun skips both passes, and a vocabulary-only match (same
// cheap pass, different replay parameters) still skips the cheap pass.

// reducedConfigJSON is the replay-side half of a reduced cache's key.
type reducedConfigJSON struct {
	RepsPerPhase  int    `json:"reps_per_phase"`
	SkipHPC       bool   `json:"skip_hpc,omitempty"`
	FullPPMOrder  int    `json:"full_ppm_order,omitempty"`
	FullNoMemDeps bool   `json:"full_no_mem_deps,omitempty"`
	FullSubset    []bool `json:"full_subset,omitempty"`
}

// reducedCheapConfigJSON is the cheap-pass half: the effective cheap
// phase configuration stamped with the sample fraction (omitted when
// every instruction is observed, matching plain phase caches).
func reducedCheapConfigJSON(cfg ReducedConfig) phaseConfigJSON {
	cfg = cfg.WithDefaults()
	cj := phaseConfigToJSON(cfg.CheapConfig())
	if cfg.SampleFrac != 1 {
		cj.SampleFrac = cfg.SampleFrac
	}
	return cj
}

func reducedConfigToJSON(cfg ReducedConfig) reducedConfigJSON {
	cfg = cfg.WithDefaults()
	subset := cfg.FullOptions.Subset
	if len(subset) == 0 {
		subset = nil
	}
	return reducedConfigJSON{
		RepsPerPhase:  cfg.RepsPerPhase,
		SkipHPC:       cfg.SkipHPC,
		FullPPMOrder:  cfg.FullOptions.PPMOrder,
		FullNoMemDeps: cfg.FullOptions.NoMemDeps,
		FullSubset:    subset,
	}
}

// reducedConfigFromJSON reassembles a ReducedConfig from the two
// halves of a cache key.
func reducedConfigFromJSON(cj phaseConfigJSON, rj reducedConfigJSON) ReducedConfig {
	phase := phaseConfigFromJSON(cj)
	sample := cj.SampleFrac
	if sample == 0 {
		sample = 1
	}
	return ReducedConfig{
		Phase:        phase,
		Subset:       phase.Options.Subset,
		SampleFrac:   sample,
		RepsPerPhase: rj.RepsPerPhase,
		SkipHPC:      rj.SkipHPC,
		FullOptions: micachar.Options{
			PPMOrder:  rj.FullPPMOrder,
			NoMemDeps: rj.FullNoMemDeps,
			Subset:    rj.FullSubset,
		},
	}
}

type phaseMeasuredJSON struct {
	Interval int       `json:"interval"`
	Phase    int       `json:"phase"`
	Insts    uint64    `json:"insts"`
	Chars    []float64 `json:"chars"`
	HPC      []float64 `json:"hpc,omitempty"`
}

type phaseReducedJSON struct {
	Name     string              `json:"name"`
	Measured []phaseMeasuredJSON `json:"measured"`
	Chars    []float64           `json:"chars"`
	HPC      []float64           `json:"hpc,omitempty"`
	Sampled  uint64              `json:"sampled_insts"`
	Full     uint64              `json:"measured_insts"`
	Skipped  uint64              `json:"skipped_insts"`
}

// SaveReduced writes per-benchmark reduced-profiling results — cheap
// vocabularies and replay outputs — to a JSON cache file, keyed by the
// normalized reduced configuration.
func SaveReduced(path string, cfg ReducedConfig, results []BenchmarkReduced) error {
	rcfg := cfg.WithDefaults()
	rcj := reducedConfigToJSON(rcfg)
	pf := phaseCacheFile{
		Version:       PhaseCacheVersion,
		Config:        reducedCheapConfigJSON(rcfg),
		ReducedConfig: &rcj,
	}
	for _, r := range results {
		res := r.Result
		ph := res.Phases
		rj := phaseResultJSON{
			Name:    r.Benchmark.Name(),
			Vectors: append([]float64(nil), ph.Vectors.Data...),
			Assign:  append([]int(nil), ph.Assign...),
			K:       ph.K,
		}
		for _, iv := range ph.Intervals {
			rj.Intervals = append(rj.Intervals, phaseIntervalJSON(iv))
		}
		for _, rep := range ph.Representatives {
			rj.Representatives = append(rj.Representatives, phaseRepJSON(rep))
		}
		pf.Results = append(pf.Results, rj)

		red := phaseReducedJSON{
			Name:    r.Benchmark.Name(),
			Chars:   res.Chars[:],
			Sampled: res.SampledInsts,
			Full:    res.MeasuredInsts,
			Skipped: res.SkippedInsts,
		}
		if res.HasHPC {
			red.HPC = res.HPC[:]
		}
		for _, mi := range res.Measured {
			mj := phaseMeasuredJSON{
				Interval: mi.Interval, Phase: mi.Phase, Insts: mi.Insts,
				Chars: mi.Chars[:],
			}
			if res.HasHPC {
				mj.HPC = mi.HPC[:]
			}
			red.Measured = append(red.Measured, mj)
		}
		pf.Reduced = append(pf.Reduced, red)
	}
	return writePhaseCache(path, pf)
}

// LoadReduced reads a cache written by SaveReduced. Benchmarks are
// re-resolved by name against the registry; shapes and index ranges
// are validated like LoadPhases.
func LoadReduced(path string) ([]BenchmarkReduced, ReducedConfig, error) {
	pf, err := readPhaseCache(path)
	if err != nil {
		return nil, ReducedConfig{}, err
	}
	if pf.ReducedConfig == nil || len(pf.Reduced) == 0 {
		return nil, ReducedConfig{}, fmt.Errorf("mica: %s has no reduced-profiling results", path)
	}
	cfg := reducedConfigFromJSON(pf.Config, *pf.ReducedConfig)
	vocab := make(map[string]*PhaseResult, len(pf.Results))
	for _, rj := range pf.Results {
		res, err := phaseResultFromJSON(rj)
		if err != nil {
			return nil, ReducedConfig{}, fmt.Errorf("mica: %s: %s: %w", path, rj.Name, err)
		}
		vocab[rj.Name] = res
	}
	out := make([]BenchmarkReduced, 0, len(pf.Reduced))
	for _, red := range pf.Reduced {
		b, err := BenchmarkByName(red.Name)
		if err != nil {
			return nil, ReducedConfig{}, err
		}
		ph, ok := vocab[red.Name]
		if !ok {
			return nil, ReducedConfig{}, fmt.Errorf("mica: %s: reduced result for %s has no cheap vocabulary", path, red.Name)
		}
		res, err := reducedResultFromJSON(red, ph, !cfg.SkipHPC)
		if err != nil {
			return nil, ReducedConfig{}, fmt.Errorf("mica: %s: %s: %w", path, red.Name, err)
		}
		out = append(out, BenchmarkReduced{Benchmark: b, Result: res})
	}
	return out, cfg, nil
}

func reducedResultFromJSON(red phaseReducedJSON, ph *PhaseResult, hasHPC bool) (*ReducedResult, error) {
	if len(red.Chars) != NumChars {
		return nil, fmt.Errorf("extrapolated vector has %d entries, want %d", len(red.Chars), NumChars)
	}
	if hasHPC && len(red.HPC) != NumHPCMetrics {
		return nil, fmt.Errorf("extrapolated HPC vector has %d entries, want %d", len(red.HPC), NumHPCMetrics)
	}
	res := &ReducedResult{
		Phases:        ph,
		HasHPC:        hasHPC,
		SampledInsts:  red.Sampled,
		MeasuredInsts: red.Full,
		SkippedInsts:  red.Skipped,
	}
	copy(res.Chars[:], red.Chars)
	copy(res.HPC[:], red.HPC)
	if len(red.Measured) == 0 {
		return nil, fmt.Errorf("no measured intervals")
	}
	for _, mj := range red.Measured {
		if mj.Interval < 0 || mj.Interval >= len(ph.Intervals) || mj.Phase < 0 || mj.Phase >= ph.K {
			return nil, fmt.Errorf("measured interval %+v out of range", mj)
		}
		if len(mj.Chars) != NumChars || (hasHPC && len(mj.HPC) != NumHPCMetrics) {
			return nil, fmt.Errorf("measured interval %d has malformed vectors", mj.Interval)
		}
		mi := phases.MeasuredInterval{Interval: mj.Interval, Phase: mj.Phase, Insts: mj.Insts}
		copy(mi.Chars[:], mj.Chars)
		copy(mi.HPC[:], mj.HPC)
		res.Measured = append(res.Measured, mi)
	}
	return res, nil
}

// ReducedCacheHit reports how much of a reduced request a cache
// satisfied.
type ReducedCacheHit int

const (
	// ReducedMiss: both passes ran.
	ReducedMiss ReducedCacheHit = iota
	// ReducedHitVocab: the cached cheap vocabulary was reused, only the
	// replay pass ran.
	ReducedHitVocab
	// ReducedHitFull: everything came from the cache; no VM ran.
	ReducedHitFull
)

func (h ReducedCacheHit) String() string {
	switch h {
	case ReducedHitVocab:
		return "vocabulary hit"
	case ReducedHitFull:
		return "full hit"
	default:
		return "miss"
	}
}

// AnalyzeReducedCached is AnalyzeReducedBenchmarks behind a JSON
// cache. A full configuration match returns the cached results without
// running a single VM instruction; a cheap-side match alone (same
// interval grid, subset, sample fraction and clustering — a cached
// phase vocabulary, whether written by a reduced run or by the plain
// phase pipeline at SampleFrac 1) skips the cheap pass and runs only
// the replay. As with AnalyzePhasesCached, a file that exists but
// cannot be loaded is an error, and a narrower mismatched request
// never overwrites a broader cache.
func AnalyzeReducedCached(path string, bs []Benchmark, cfg ReducedPipelineConfig) ([]BenchmarkReduced, ReducedCacheHit, error) {
	rcfg := cfg.Reduced.WithDefaults()
	cfg.Reduced = rcfg
	wantCheap := reducedCheapConfigJSON(rcfg)
	wantReduced := reducedConfigToJSON(rcfg)

	pf, err := readPhaseCache(path)
	if err != nil {
		if lerr := loadableCacheError(path, err); lerr != nil {
			return nil, ReducedMiss, lerr
		}
		return analyzeReducedAndSave(path, bs, cfg, nil)
	}
	if pf.Joint != nil {
		// A joint vocabulary is a different kind of cache; recomputing
		// over it would silently destroy it (same refusal the plain
		// per-benchmark path makes via LoadPhases).
		return nil, ReducedMiss, fmt.Errorf("mica: %s is a joint phase cache, not a per-benchmark reduced cache (delete it or pass another path)", path)
	}
	if !reflect.DeepEqual(pf.Config, wantCheap) {
		return analyzeReducedAndSave(path, bs, cfg, cacheNames(pf))
	}

	// Full hit: reduced outputs present under the same replay
	// configuration, covering every requested benchmark.
	if pf.ReducedConfig != nil && reflect.DeepEqual(*pf.ReducedConfig, wantReduced) {
		cached, _, err := LoadReduced(path)
		if err != nil {
			return nil, ReducedMiss, loadableCacheError(path, err)
		}
		byName := make(map[string]*ReducedResult, len(cached))
		for _, r := range cached {
			byName[r.Benchmark.Name()] = r.Result
		}
		hit := make([]BenchmarkReduced, 0, len(bs))
		for _, b := range bs {
			res, ok := byName[b.Name()]
			if !ok {
				hit = nil
				break
			}
			hit = append(hit, BenchmarkReduced{Benchmark: b, Result: res})
		}
		if hit != nil {
			return hit, ReducedHitFull, nil
		}
	}

	// Vocabulary hit: the cheap-pass results match; replay only.
	if len(pf.Results) > 0 {
		vocab := make(map[string]*PhaseResult, len(pf.Results))
		for _, rj := range pf.Results {
			res, verr := phaseResultFromJSON(rj)
			if verr != nil {
				return nil, ReducedMiss, fmt.Errorf("mica: %s: %s: %w", path, rj.Name, verr)
			}
			vocab[rj.Name] = res
		}
		covered := true
		for _, b := range bs {
			if _, ok := vocab[b.Name()]; !ok {
				covered = false
				break
			}
		}
		if covered {
			results, err := replayFromVocabulary(bs, vocab, cfg)
			if err != nil {
				return nil, ReducedMiss, err
			}
			if coversCache(bs, cacheNames(pf)) {
				if err := SaveReduced(path, rcfg, results); err != nil {
					return nil, ReducedMiss, err
				}
			}
			return results, ReducedHitVocab, nil
		}
	}
	return analyzeReducedAndSave(path, bs, cfg, cacheNames(pf))
}

// replayFromVocabulary runs only the replay pass of the reduced
// pipeline against cached cheap vocabularies, sharded over the fixed
// worker pool with one pooled full-pass profiler per worker — the same
// pooling and progress reporting a cache miss gets from
// AnalyzeReducedBenchmarks, and the same fault isolation: every
// failing benchmark is named in the joined error, none can crash the
// others.
func replayFromVocabulary(bs []Benchmark, vocab map[string]*PhaseResult, cfg ReducedPipelineConfig) ([]BenchmarkReduced, error) {
	rcfg := cfg.Reduced.WithDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(bs) {
		workers = len(bs)
	}
	results := make([]BenchmarkReduced, len(bs))
	profs := make([]*micachar.Profiler, workers)
	var done int
	var mu sync.Mutex

	err := pool.RunCtx(context.Background(), len(bs), workers, func(_ context.Context, worker, i int) error {
		replay, err := bs[i].Source()
		if err != nil {
			return err
		}
		if profs[worker] == nil {
			profs[worker] = micachar.NewProfiler(rcfg.FullOptions)
		}
		res, err := phases.ReplayReduced(replay, profs[worker], vocab[bs[i].Name()], rcfg)
		if err != nil {
			return err
		}
		results[i] = BenchmarkReduced{Benchmark: bs[i], Result: res}
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(bs), bs[i].Name())
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, namePoolErrors(err, "reduced replay of", func(i int) string { return bs[i].Name() })
	}
	return results, nil
}

// cacheNames lists every benchmark a cache file holds results for.
func cacheNames(pf phaseCacheFile) []string {
	var names []string
	for _, rj := range pf.Results {
		names = append(names, rj.Name)
	}
	return names
}

// analyzeReducedAndSave runs the full two-pass pipeline and persists
// it, honoring the never-narrow-a-cache rule.
func analyzeReducedAndSave(path string, bs []Benchmark, cfg ReducedPipelineConfig, cachedNames []string) ([]BenchmarkReduced, ReducedCacheHit, error) {
	results, err := AnalyzeReducedBenchmarks(bs, cfg)
	if err != nil {
		return nil, ReducedMiss, err
	}
	if coversCache(bs, cachedNames) {
		if err := SaveReduced(path, cfg.Reduced, results); err != nil {
			return nil, ReducedMiss, err
		}
	}
	return results, ReducedMiss, nil
}

// AnalyzeReducedJointCached is AnalyzeReducedJoint with the joint
// vocabulary behind a JSON cache: when path holds a joint vocabulary
// under the same cheap configuration (interval grid, subset, sample
// fraction, clustering) for exactly the requested benchmarks, the
// cheap characterization and clustering are skipped and only the
// replay runs. The boolean reports whether the vocabulary was reused.
func AnalyzeReducedJointCached(path string, bs []Benchmark, cfg ReducedPipelineConfig) (*PhaseJointReduced, bool, error) {
	rcfg := cfg.Reduced.WithDefaults()
	cfg.Reduced = rcfg
	wantCheap := reducedCheapConfigJSON(rcfg)

	machines := func(bi int) (trace.Source, error) { return bs[bi].Source() }

	pf, err := readPhaseCache(path)
	switch {
	case err != nil:
		if lerr := loadableCacheError(path, err); lerr != nil {
			return nil, false, lerr
		}
	case pf.Joint == nil:
		// A per-benchmark cache is a different kind of file; recomputing
		// over it would silently destroy it (same refusal the plain
		// joint path makes via LoadJointPhases).
		return nil, false, fmt.Errorf("mica: %s is a per-benchmark phase cache, not a joint cache (delete it or pass another path)", path)
	case reflect.DeepEqual(pf.Config, wantCheap):
		cached, _, err := LoadJointPhases(path)
		if err != nil {
			return nil, false, loadableCacheError(path, err)
		}
		if namesMatch(cached.Benchmarks, bs) {
			jr, err := phases.ReplayJoint(cached, machines, rcfg)
			if err != nil {
				return nil, false, fmt.Errorf("mica: joint reduced replay: %w", err)
			}
			return jr, true, nil
		}
	}

	jr, err := AnalyzeReducedJoint(bs, cfg)
	if err != nil {
		return nil, false, err
	}
	var cachedNames []string
	if pf.Joint != nil {
		cachedNames = pf.Joint.Benchmarks
	}
	if coversCache(bs, cachedNames) {
		if err := saveJointPhasesWithConfig(path, wantCheap, jr.Joint); err != nil {
			return nil, false, err
		}
	}
	return jr, false, nil
}
