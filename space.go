package mica

import (
	"fmt"
	"sort"

	"mica/internal/cluster"
	"mica/internal/featsel"
	"mica/internal/kiviat"
	"mica/internal/pca"
	"mica/internal/roc"
	"mica/internal/stats"
)

// Re-exported analysis types.
type (
	// Matrix is a dense benchmarks-by-characteristics matrix.
	Matrix = stats.Matrix
	// Quadrants is the Table III classification of benchmark tuples.
	Quadrants = roc.Quadrants
	// ROCPoint is one Figure 4 ROC curve point.
	ROCPoint = roc.Point
	// GAResult is the outcome of GA key-characteristic selection.
	GAResult = featsel.GAResult
	// CEResult is the outcome of correlation elimination.
	CEResult = featsel.CEResult
	// ClusterSelection is the BIC-selected clustering of Figure 6.
	ClusterSelection = cluster.Selection
	// KiviatDiagram is a renderable kiviat plot.
	KiviatDiagram = kiviat.Diagram
	// PCAResult is a fitted principal-components baseline.
	PCAResult = pca.Result
)

// DefaultThresholdFraction is the paper's 20%-of-max distance threshold.
const DefaultThresholdFraction = roc.DefaultThresholdFraction

// Space is the workload space built from profiled benchmarks: the raw and
// z-score-normalized data matrices for both characterizations, plus the
// pairwise benchmark-tuple distances the paper's analyses operate on.
type Space struct {
	Names  []string
	Suites []string

	// Chars and HPC are the raw measurement matrices (rows follow
	// Names).
	Chars *Matrix
	HPC   *Matrix

	// NormChars and NormHPC are the z-score normalized matrices. As in
	// the paper, the HPC distance space is built from the true counter
	// metrics only (the first NumHPCCounterMetrics columns); the
	// instruction-mix tail of HPC is used only for the Figure 2
	// comparison.
	NormChars *Matrix
	NormHPC   *Matrix

	// CharDist and HPCDist are pairwise benchmark-tuple distances in
	// canonical pair order.
	CharDist []float64
	HPCDist  []float64

	cache *featsel.DistanceCache
}

// NewSpace assembles a Space from profiling results.
func NewSpace(results []ProfileResult) *Space {
	s := &Space{
		Names:  make([]string, len(results)),
		Suites: make([]string, len(results)),
		Chars:  stats.NewMatrix(len(results), NumChars),
		HPC:    stats.NewMatrix(len(results), NumHPCMetrics),
	}
	for i, r := range results {
		s.Names[i] = r.Benchmark.Name()
		s.Suites[i] = r.Benchmark.Suite
		copy(s.Chars.Row(i), r.Chars[:])
		copy(s.HPC.Row(i), r.HPC[:])
	}
	s.NormChars = stats.ZScoreNormalize(s.Chars)
	counterCols := make([]int, NumHPCCounterMetrics)
	for i := range counterCols {
		counterCols[i] = i
	}
	s.NormHPC = stats.ZScoreNormalize(s.HPC.SelectColumns(counterCols))
	s.CharDist = stats.PairwiseDistances(s.NormChars)
	s.HPCDist = stats.PairwiseDistances(s.NormHPC)
	s.cache = featsel.NewDistanceCache(s.NormChars)
	return s
}

// Len returns the number of benchmarks in the space.
func (s *Space) Len() int { return len(s.Names) }

// PairIndex returns the index of pair (i, j) into CharDist/HPCDist.
func (s *Space) PairIndex(i, j int) int { return stats.PairIndex(s.Len(), i, j) }

// DistanceCorrelation is the Figure 1 statistic: the Pearson correlation
// between benchmark-tuple distances in the HPC space and in the
// microarchitecture-independent space. The paper reports a modest 0.46.
func (s *Space) DistanceCorrelation() float64 {
	return stats.Pearson(s.HPCDist, s.CharDist)
}

// ClassifyTuples is the Table III experiment: quadrant classification of
// all benchmark tuples with both thresholds at frac of the maximum
// distance in their space (the paper uses 0.20).
func (s *Space) ClassifyTuples(frac float64) Quadrants {
	return roc.ClassifyAtFraction(s.HPCDist, s.CharDist, frac)
}

// SubsetDistances returns pairwise distances using only the listed
// characteristics of the normalized µarch-independent space.
func (s *Space) SubsetDistances(cols []int) []float64 {
	return s.cache.SubsetDistances(cols)
}

// SubsetRho is the Figure 5 statistic: the correlation between full-space
// and subset-space benchmark-tuple distances.
func (s *Space) SubsetRho(cols []int) float64 {
	return s.cache.RhoSubset(cols)
}

// ROCCurve computes the Figure 4 ROC curve for a characteristic subset
// (nil means all 47): the HPC threshold is fixed at hpcFrac of maximum,
// the µarch-independent threshold sweeps.
func (s *Space) ROCCurve(cols []int, hpcFrac float64) []ROCPoint {
	dist := s.CharDist
	if cols != nil {
		dist = s.SubsetDistances(cols)
	}
	return roc.Curve(s.HPCDist, dist, hpcFrac)
}

// AUC integrates a ROC curve.
func AUC(points []ROCPoint) float64 { return roc.AUC(points) }

// CorrelationElimination runs the Section V-A method on the normalized
// characteristic matrix.
func (s *Space) CorrelationElimination() CEResult {
	return featsel.CorrelationElimination(s.NormChars)
}

// CECurve returns the Figure 5 CE series: SubsetRho of the CE-retained
// subset for every size 1..47.
func (s *Space) CECurve() []float64 {
	return featsel.CECurve(s.NormChars)
}

// GASelect runs the Section V-B genetic algorithm. Seed 0 is a valid
// deterministic seed.
func (s *Space) GASelect(seed int64) GAResult {
	return featsel.GASelect(s.NormChars, featsel.GAConfig{Seed: seed})
}

// PCA fits the principal-components baseline (Section V-C) on the
// normalized characteristic matrix.
func (s *Space) PCA() PCAResult { return pca.Fit(s.NormChars) }

// Cluster runs the Figure 6 experiment: k-means over the selected
// characteristic subset (nil = all 47) for K in 1..maxK, choosing K by
// the 90%-of-max BIC rule.
func (s *Space) Cluster(cols []int, maxK int, seed int64) ClusterSelection {
	m := s.NormChars
	if cols != nil {
		m = m.SelectColumns(cols)
	}
	return cluster.SelectK(m, maxK, 0.9, seed)
}

// Linkage rules for hierarchical clustering, re-exported.
const (
	CompleteLinkage = cluster.CompleteLinkage
	SingleLinkage   = cluster.SingleLinkage
	AverageLinkage  = cluster.AverageLinkage
)

// Dendrogram is an agglomerative clustering history.
type Dendrogram = cluster.Dendrogram

// HierarchicalCluster builds a dendrogram over the selected
// characteristic subset (nil = all 47) — the clustering style of the
// prior work the paper compares against (Phansalkar et al.). Cut it at a
// chosen K or distance to obtain flat clusters.
func (s *Space) HierarchicalCluster(cols []int, linkage cluster.Linkage) *Dendrogram {
	m := s.NormChars
	if cols != nil {
		m = m.SelectColumns(cols)
	}
	return cluster.Hierarchical(m, linkage)
}

// ClusterGroups converts a clustering into benchmark-name groups,
// ordered largest first. The ordering is stable: equal-size clusters
// keep ascending cluster-id order, so repeated runs over the same
// clustering always render groups identically.
// Empty clusters (ids k-means left unassigned) are dropped, so
// renderers never show a "cluster N (0 benchmarks)" group and group
// numbering is contiguous over the populated clusters.
func (s *Space) ClusterGroups(sel ClusterSelection) [][]string {
	k := sel.Best.K
	byID := make([][]string, k)
	for i, c := range sel.Best.Assign {
		byID[c] = append(byID[c], s.Names[i])
	}
	groups := make([][]string, 0, k)
	for _, g := range byID {
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	sort.SliceStable(groups, func(a, b int) bool {
		return len(groups[a]) > len(groups[b])
	})
	return groups
}

// Kiviat builds a kiviat diagram for one benchmark over the selected
// characteristics (typically the 8 GA-selected ones; nil means all 47,
// the same convention as ROCCurve, Cluster and HierarchicalCluster),
// with axes scaled to [0,1] by min-max normalization across the whole
// space, as in Figure 6.
func (s *Space) Kiviat(benchIdx int, cols []int) (*KiviatDiagram, error) {
	if benchIdx < 0 || benchIdx >= s.Len() {
		return nil, fmt.Errorf("mica: benchmark index %d out of range", benchIdx)
	}
	if cols == nil {
		cols = make([]int, NumChars)
		for i := range cols {
			cols[i] = i
		}
	}
	sub := s.NormChars.SelectColumns(cols)
	mm := stats.MinMaxNormalizeColumns(sub)
	labels := make([]string, len(cols))
	for i, c := range cols {
		labels[i] = CharName(c)
	}
	return kiviat.New(s.Names[benchIdx], labels, mm.Row(benchIdx))
}
