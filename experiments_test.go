package mica

import (
	"reflect"
	"strings"
	"testing"

	"mica/internal/cluster"
	"mica/internal/stats"
)

// TestRenderTablesEmptyResults pins the empty-registry behaviour: the
// table renderers must degrade to a "(no benchmarks)" placeholder
// instead of panicking on results[0] / col[0].
func TestRenderTablesEmptyResults(t *testing.T) {
	for name, render := range map[string]func([]ProfileResult) string{
		"TableI":  RenderTableI,
		"TableII": RenderTableII,
	} {
		for _, results := range [][]ProfileResult{nil, {}} {
			out := render(results)
			if !strings.Contains(out, "(no benchmarks)") {
				t.Errorf("%s on empty results: missing placeholder in %q", name, out)
			}
		}
	}
}

// TestClusterGroupsStableOrder pins the documented ordering: largest
// cluster first, and equal-size clusters in ascending cluster-id order.
// The sizes below (1,3,1,3) are a witness for the old non-adjacent swap
// sort, which emitted cluster 2 before cluster 0.
func TestClusterGroupsStableOrder(t *testing.T) {
	s := &Space{Names: []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"}}
	sel := ClusterSelection{Best: cluster.Result{
		K:      4,
		Assign: []int{1, 1, 1, 3, 3, 3, 0, 2},
	}}
	want := [][]string{
		{"b0", "b1", "b2"}, // cluster 1, size 3
		{"b3", "b4", "b5"}, // cluster 3, size 3 (tie: higher id after)
		{"b6"},             // cluster 0, size 1 (tie: lowest id first)
		{"b7"},             // cluster 2, size 1
	}
	for trial := 0; trial < 3; trial++ {
		got := s.ClusterGroups(sel)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: groups = %v, want %v", trial, got, want)
		}
	}
}

// TestClusterGroupsDropsEmptyClusters: when k-means leaves a cluster id
// unassigned, ClusterGroups must omit it instead of emitting an empty
// group, and renderers numbering the groups stay contiguous.
func TestClusterGroupsDropsEmptyClusters(t *testing.T) {
	s := &Space{Names: []string{"b0", "b1", "b2"}}
	sel := ClusterSelection{Best: cluster.Result{
		K:      4,
		Assign: []int{2, 0, 2}, // ids 1 and 3 never used
	}}
	want := [][]string{
		{"b0", "b2"}, // cluster 2, size 2
		{"b1"},       // cluster 0, size 1
	}
	got := s.ClusterGroups(sel)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v (empty clusters dropped)", got, want)
	}
}

// TestRenderFigure6SkipsEmptyClusters pins the rendered numbering: with
// an unassigned cluster id, Figure 6 must show contiguous group numbers
// and never a "(0 benchmarks)" line.
func TestRenderFigure6SkipsEmptyClusters(t *testing.T) {
	a := &Analysis{
		Space: &Space{Names: []string{"b0", "b1", "b2"}},
		Clusters: ClusterSelection{Best: cluster.Result{
			K:      3,
			Assign: []int{0, 2, 0}, // id 1 unassigned
		}},
	}
	a.GA.Selected = []int{0, 9}
	out := a.RenderFigure6(false)
	if strings.Contains(out, "(0 benchmarks)") {
		t.Errorf("Figure 6 renders an empty cluster:\n%s", out)
	}
	// The header counts the populated groups, agreeing with the body.
	if !strings.Contains(out, "Figure 6: 2 clusters") {
		t.Errorf("Figure 6 header disagrees with the rendered groups:\n%s", out)
	}
	for _, want := range []string{"cluster 1 (2 benchmarks):", "cluster 2 (1 benchmarks):"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cluster 3") {
		t.Errorf("Figure 6 numbering is not contiguous:\n%s", out)
	}
}

// TestKiviatNilColsMeansAll pins the nil-means-all-47 convention shared
// by every Space API taking a characteristic subset: Kiviat(i, nil)
// must render all 47 axes, not zero.
func TestKiviatNilColsMeansAll(t *testing.T) {
	s := &Space{
		Names:     []string{"b0", "b1"},
		NormChars: stats.NewMatrix(2, NumChars),
	}
	for c := 0; c < NumChars; c++ {
		s.NormChars.Set(0, c, float64(c))
		s.NormChars.Set(1, c, -float64(c))
	}
	d, err := s.Kiviat(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Labels); got != NumChars {
		t.Fatalf("Kiviat(0, nil) has %d axes, want all %d", got, NumChars)
	}
	// An explicit subset still selects exactly those columns.
	d, err = s.Kiviat(1, []int{0, 9, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Labels); got != 3 {
		t.Fatalf("explicit subset has %d axes, want 3", got)
	}
}
