package mica

import (
	"reflect"
	"strings"
	"testing"

	"mica/internal/cluster"
)

// TestRenderTablesEmptyResults pins the empty-registry behaviour: the
// table renderers must degrade to a "(no benchmarks)" placeholder
// instead of panicking on results[0] / col[0].
func TestRenderTablesEmptyResults(t *testing.T) {
	for name, render := range map[string]func([]ProfileResult) string{
		"TableI":  RenderTableI,
		"TableII": RenderTableII,
	} {
		for _, results := range [][]ProfileResult{nil, {}} {
			out := render(results)
			if !strings.Contains(out, "(no benchmarks)") {
				t.Errorf("%s on empty results: missing placeholder in %q", name, out)
			}
		}
	}
}

// TestClusterGroupsStableOrder pins the documented ordering: largest
// cluster first, and equal-size clusters in ascending cluster-id order.
// The sizes below (1,3,1,3) are a witness for the old non-adjacent swap
// sort, which emitted cluster 2 before cluster 0.
func TestClusterGroupsStableOrder(t *testing.T) {
	s := &Space{Names: []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"}}
	sel := ClusterSelection{Best: cluster.Result{
		K:      4,
		Assign: []int{1, 1, 1, 3, 3, 3, 0, 2},
	}}
	want := [][]string{
		{"b0", "b1", "b2"}, // cluster 1, size 3
		{"b3", "b4", "b5"}, // cluster 3, size 3 (tie: higher id after)
		{"b6"},             // cluster 0, size 1 (tie: lowest id first)
		{"b7"},             // cluster 2, size 1
	}
	for trial := 0; trial < 3; trial++ {
		got := s.ClusterGroups(sel)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: groups = %v, want %v", trial, got, want)
		}
	}
}
