package mica

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The golden-vector test pins the profiler's output across hot-path
// rewrites: the flat-hash analyzer state, decode-time instruction
// metadata, the flat PPM tables and the VM µTLB are all pure
// optimizations, so the 47-dimensional characteristic vectors and the
// 13-dimensional HPC vectors must match the original map-based
// implementation bit-for-bit (tolerance 1e-12 covers nothing more than
// JSON round-tripping).
//
// Regenerate with: go test -run TestGoldenVectors -update-golden .
// Only do so for changes that intentionally alter measured semantics.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_vectors.json")

// goldenBudget is the per-benchmark dynamic instruction budget of the
// golden run; large enough to exercise table growth in every analyzer.
const goldenBudget = 100_000

// goldenSet spans the kernel families: compression hash chains, an
// interpreter loop, pointer chasing over a large heap, FFT floating
// point, ALU-dense hashing, and 2D-local motion estimation.
var goldenSet = []string{
	"SPEC2000/gzip/program",
	"SPEC2000/crafty/ref",
	"SPEC2000/mcf/ref",
	"MiBench/FFT/fft-large",
	"MiBench/sha/large",
	"MediaBench/mpeg2/encode",
}

type goldenEntry struct {
	Name  string    `json:"name"`
	Insts uint64    `json:"insts"`
	Chars []float64 `json:"chars"`
	HPC   []float64 `json:"hpc"`
}

func goldenProfile(t *testing.T, name string) goldenEntry {
	t.Helper()
	b, err := BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.InstBudget = goldenBudget
	res, err := Profile(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return goldenEntry{
		Name:  name,
		Insts: res.Insts,
		Chars: append([]float64(nil), res.Chars[:]...),
		HPC:   append([]float64(nil), res.HPC[:]...),
	}
}

func TestGoldenVectors(t *testing.T) {
	path := filepath.Join("testdata", "golden_vectors.json")

	if *updateGolden {
		var entries []goldenEntry
		for _, name := range goldenSet {
			entries = append(entries, goldenProfile(t, name))
		}
		data, err := json.MarshalIndent(entries, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(entries), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with -update-golden): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(goldenSet) {
		t.Fatalf("golden file has %d entries, want %d", len(entries), len(goldenSet))
	}

	const tol = 1e-12
	for _, want := range entries {
		want := want
		t.Run(want.Name, func(t *testing.T) {
			t.Parallel()
			got := goldenProfile(t, want.Name)
			if got.Insts != want.Insts {
				t.Errorf("insts = %d, want %d", got.Insts, want.Insts)
			}
			for i, w := range want.Chars {
				if g := got.Chars[i]; math.Abs(g-w) > tol {
					t.Errorf("char %d (%s) = %v, want %v (|diff| %g)",
						i, CharName(i), g, w, math.Abs(g-w))
				}
			}
			for i, w := range want.HPC {
				if g := got.HPC[i]; math.Abs(g-w) > tol {
					t.Errorf("hpc %d (%s) = %v, want %v (|diff| %g)",
						i, HPCMetricName(i), g, w, math.Abs(g-w))
				}
			}
		})
	}
}
