module mica

go 1.24
